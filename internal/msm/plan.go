package msm

import (
	"fmt"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

// PlanOptions tune plan compilation.
type PlanOptions struct {
	// Buffers overrides the display device's block buffer count;
	// 0 uses twice the read-ahead (the pipelined rule of §3.3.2).
	Buffers int
	// ReadAhead overrides the anti-jitter read-ahead in blocks;
	// 0 uses k = 1 (strict continuity).
	ReadAhead int
	// Speed enables fast-forward (> 1) or slow motion (< 1);
	// 0 means 1.
	Speed float64
	// Skip drops all but every ⌈Speed⌉-th block during fast-forward
	// (§3.3.2: fast-forward "with skipping").
	Skip bool
	// Scattering overrides the admission-control scattering estimate
	// for the strand; 0 measures the strand's realized maximum.
	Scattering float64
	// Class is the request's QoS class (zero value is best-effort; see
	// continuity.Class). Only meaningful when the manager has QoS
	// enabled.
	Class continuity.Class
}

// PlanStrandPlay compiles a whole-strand PLAY plan: one planned block
// per media block, each with its recording-rate playback duration
// (adjusted for fast-forward), plus the admission-control description
// of the request.
func PlanStrandPlay(d disk.Device, s *strand.Strand, opts PlanOptions) (PlayPlan, error) {
	return PlanIntervalPlay(d, []IntervalRef{{Strand: s, StartUnit: 0, NumUnits: s.UnitCount()}}, opts)
}

// IntervalRef names a run of units within one strand; rope playback
// compiles interval lists into plans with one IntervalRef per rope
// interval. Edge blocks covered only partially contribute pro-rated
// playback durations.
type IntervalRef struct {
	Strand    *strand.Strand
	StartUnit uint64
	NumUnits  uint64
}

// PlanIntervalPlay compiles a PLAY plan over a sequence of strand
// intervals (the shape an edited rope produces). All intervals must
// share one medium; the admission description uses the first strand's
// parameters and the worst realized scattering across the intervals
// (including the junction hops between intervals).
func PlanIntervalPlay(d disk.Device, ivs []IntervalRef, opts PlanOptions) (PlayPlan, error) {
	if len(ivs) == 0 {
		return PlayPlan{}, fmt.Errorf("msm: empty interval list")
	}
	speed := opts.Speed
	if speed == 0 {
		speed = 1
	}
	skipStride := 1
	if opts.Skip && speed > 1 {
		skipStride = int(speed + 0.999999)
	}

	first := ivs[0].Strand
	var blocks []PlannedBlock
	var maxScatter time.Duration
	for _, iv := range ivs {
		s := iv.Strand
		if s.Medium() != first.Medium() {
			return PlayPlan{}, fmt.Errorf("msm: interval list mixes %v and %v strands", first.Medium(), s.Medium())
		}
		if iv.NumUnits == 0 {
			continue
		}
		if iv.StartUnit+iv.NumUnits > s.UnitCount() {
			return PlayPlan{}, fmt.Errorf("msm: interval [%d,%d) outside strand %d (%d units)",
				iv.StartUnit, iv.StartUnit+iv.NumUnits, s.ID(), s.UnitCount())
		}
		r := strand.NewReader(d, s)
		q := uint64(s.Granularity())
		firstBlock := int(iv.StartUnit / q)
		lastBlock := int((iv.StartUnit + iv.NumUnits - 1) / q)
		for b := firstBlock; b <= lastBlock; b += skipStride {
			// Units of this block that the interval actually covers.
			blkLo := uint64(b) * q
			blkHi := blkLo + q
			lo := max64(blkLo, iv.StartUnit)
			hi := min64(blkHi, iv.StartUnit+iv.NumUnits)
			units := hi - lo
			if opts.Skip && speed > 1 {
				// Skipping: the retained block covers its whole
				// stride's share of interval playback.
				strideHi := blkLo + q*uint64(skipStride)
				hi = min64(strideHi, iv.StartUnit+iv.NumUnits)
				units = hi - lo
			}
			dur := continuity.Duration(float64(units) / s.Rate() / speed)
			if dur <= 0 {
				continue
			}
			blocks = append(blocks, PlannedBlock{Reader: r, Index: b, Duration: dur})
		}
		if st := s.MaxScatterTime(d.Geometry()); st > maxScatter {
			maxScatter = st
		}
	}
	// Junction hops between consecutive plan blocks from different
	// strands also bound the request's scattering.
	g := d.Geometry()
	for i := 1; i < len(blocks); i++ {
		a, b := blocks[i-1], blocks[i]
		ea, erra := a.Reader.Strand().Block(a.Index)
		eb, errb := b.Reader.Strand().Block(b.Index)
		if erra != nil || errb != nil || ea.Silent() || eb.Silent() {
			continue
		}
		dist := g.CylinderOf(int(eb.Sector)) - g.CylinderOf(int(ea.Sector))
		if dist < 0 {
			dist = -dist
		}
		if t := g.AccessTime(dist); t > maxScatter {
			maxScatter = t
		}
	}
	if len(blocks) == 0 {
		return PlayPlan{}, fmt.Errorf("msm: interval list compiles to zero blocks")
	}

	lds := opts.Scattering
	if lds == 0 {
		lds = continuity.Seconds(maxScatter)
	}
	rate := first.Rate() * speed
	if opts.Skip && speed > 1 {
		rate = first.Rate() // skipping leaves the block arrival rate unchanged
	}
	ra := opts.ReadAhead
	if ra < 1 {
		ra = 1
	}
	buffers := opts.Buffers
	if buffers == 0 {
		buffers = 2 * ra
	}
	return PlayPlan{
		Name:   fmt.Sprintf("play-strand-%d", first.ID()),
		Blocks: blocks,
		Admission: continuity.Request{
			Name:        fmt.Sprintf("strand-%d", first.ID()),
			Granularity: first.Granularity(),
			UnitBits:    float64(first.UnitBits()),
			Rate:        rate,
			Scattering:  lds,
		},
		Buffers:   buffers,
		ReadAhead: ra,
		Class:     opts.Class,
	}, nil
}

// ExpandInterval compiles one strand unit-range into planned blocks at
// normal speed, pro-rating edge blocks covered only partially. Rope
// playback uses it to assemble multi-interval plans.
func ExpandInterval(d disk.Device, s *strand.Strand, startUnit, numUnits uint64) ([]PlannedBlock, error) {
	if numUnits == 0 {
		return nil, nil
	}
	if startUnit+numUnits > s.UnitCount() {
		return nil, fmt.Errorf("msm: interval [%d,%d) outside strand %d (%d units)",
			startUnit, startUnit+numUnits, s.ID(), s.UnitCount())
	}
	r := strand.NewReader(d, s)
	q := uint64(s.Granularity())
	firstBlock := int(startUnit / q)
	lastBlock := int((startUnit + numUnits - 1) / q)
	var out []PlannedBlock
	for b := firstBlock; b <= lastBlock; b++ {
		blkLo := uint64(b) * q
		lo := max64(blkLo, startUnit)
		hi := min64(blkLo+q, startUnit+numUnits)
		dur := continuity.Duration(float64(hi-lo) / s.Rate())
		if dur <= 0 {
			continue
		}
		out = append(out, PlannedBlock{Reader: r, Index: b, Duration: dur})
	}
	return out, nil
}

// MaxPlanScatter computes the worst inter-block positioning time over
// a block sequence, including hops across strand boundaries; it is the
// honest scattering estimate for admission control of compiled plans.
func MaxPlanScatter(d disk.Device, blocks []PlannedBlock) time.Duration {
	g := d.Geometry()
	var maxT time.Duration
	prevCyl := -1
	for _, b := range blocks {
		if b.Reader == nil {
			continue
		}
		e, err := b.Reader.Strand().Block(b.Index)
		if err != nil || e.Silent() {
			continue
		}
		cyl := g.CylinderOf(int(e.Sector))
		if prevCyl >= 0 {
			if t := g.AccessTime(absInt(cyl - prevCyl)); t > maxT {
				maxT = t
			}
		}
		prevCyl = cyl
	}
	return maxT
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// PlanBlocksPlay assembles a PlayPlan from an explicit block sequence
// (the rope layer's compile target). The admission request supplies
// granularity/rate/unit size; a zero Scattering is replaced by the
// measured worst hop of the sequence.
func PlanBlocksPlay(d disk.Device, name string, blocks []PlannedBlock, adm continuity.Request, opts PlanOptions) (PlayPlan, error) {
	if len(blocks) == 0 {
		return PlayPlan{}, fmt.Errorf("msm: plan %q compiles to zero blocks", name)
	}
	if adm.Scattering == 0 {
		adm.Scattering = continuity.Seconds(MaxPlanScatter(d, blocks))
	}
	if opts.Scattering != 0 {
		adm.Scattering = opts.Scattering
	}
	ra := opts.ReadAhead
	if ra < 1 {
		ra = 1
	}
	buffers := opts.Buffers
	if buffers == 0 {
		buffers = 2 * ra
	}
	return PlayPlan{
		Name:      name,
		Blocks:    blocks,
		Admission: adm,
		Buffers:   buffers,
		ReadAhead: ra,
		Class:     opts.Class,
	}, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// PlanRecord compiles a RECORD plan for a writer/source pair.
// totalUnits of 0 records until the source is exhausted.
func PlanRecord(name string, w *strand.Writer, src media.Source, unitsPerBlock int, totalUnits uint64, scattering float64, buffers int) RecordPlan {
	if buffers < 1 {
		buffers = 2
	}
	return RecordPlan{
		Name:          name,
		Writer:        w,
		Source:        src,
		UnitsPerBlock: unitsPerBlock,
		TotalUnits:    totalUnits,
		Admission: continuity.Request{
			Name:        name,
			Granularity: unitsPerBlock,
			UnitBits:    float64(src.UnitBytes() * 8),
			Rate:        src.Rate(),
			Scattering:  scattering,
		},
		Buffers: buffers,
	}
}
