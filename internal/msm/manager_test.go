package msm

import (
	"testing"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

// testRig bundles the substrate a manager test needs.
type testRig struct {
	d   *disk.Disk
	a   *alloc.Allocator
	st  *strand.Store
	m   *Manager
	dev continuity.Device
}

func newRig(t *testing.T, g disk.Geometry) *testRig {
	t.Helper()
	d := disk.MustNew(g)
	a, err := alloc.New(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	dev := continuity.Device{
		TransferRate: g.TransferRateBits(),
		MaxAccess:    continuity.Seconds(g.MaxAccessTime()),
		MinAccess:    continuity.Seconds(g.MinAccessTime()),
	}
	return &testRig{
		d:   d,
		a:   a,
		st:  strand.NewStore(d, a),
		m:   New(d, continuity.AdmissionFor(dev)),
		dev: dev,
	}
}

// targetCylinders is the test placement policy: blocks of a strand are
// kept within this many cylinders of each other, so the realizable
// scattering (and hence the admission-control β) stays far below the
// continuity-derived maximum, leaving slack for concurrent requests.
const targetCylinders = 32

// scattering is the admission-control scattering estimate matching the
// placement policy.
func (r *testRig) scattering() float64 {
	return continuity.Seconds(r.d.Geometry().AccessTime(targetCylinders))
}

// recordVideo records a synthetic video strand through the manager and
// returns it.
func (r *testRig) recordVideo(t *testing.T, frames, frameBytes, gran int, rate float64, seed int64) *strand.Strand {
	t.Helper()
	dv, err := continuity.Derive(continuity.Config{Arch: continuity.Pipelined}, 2*gran,
		continuity.Media{Name: "video", UnitBits: float64(frameBytes * 8), Rate: rate},
		r.dev)
	if err != nil {
		t.Fatalf("derive: %v", err)
	}
	if dv.MaxScattering < r.scattering() {
		t.Fatalf("placement policy scattering %.4fs exceeds continuity bound %.4fs", r.scattering(), dv.MaxScattering)
	}
	cons := alloc.Constraint{MinCylinders: 1, MaxCylinders: targetCylinders}
	w, err := strand.NewWriter(r.d, r.a, strand.WriterConfig{
		ID:          r.st.NewID(),
		Medium:      layout.Video,
		Rate:        rate,
		UnitBytes:   frameBytes,
		Granularity: gran,
		Constraint:  cons,
	})
	if err != nil {
		t.Fatalf("writer: %v", err)
	}
	src := media.NewVideoSource(frames, frameBytes, rate, seed)
	plan := PlanRecord("rec", w, src, gran, uint64(frames), r.scattering(), 4)
	id, _, err := r.m.AdmitRecord(plan)
	if err != nil {
		t.Fatalf("admit record: %v", err)
	}
	r.m.RunUntilDone()
	if v, _ := r.m.Violations(id); len(v) != 0 {
		t.Fatalf("record had %d violations: %+v", len(v), v[0])
	}
	s, err := w.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	r.st.Put(s)
	return s
}

func TestRecordThenPlayRoundTrip(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	const frames, frameBytes, gran = 120, 18000, 3
	s := rig.recordVideo(t, frames, frameBytes, gran, 30, 42)

	if s.UnitCount() != frames {
		t.Fatalf("strand has %d units, want %d", s.UnitCount(), frames)
	}
	if s.NumBlocks() != frames/gran {
		t.Fatalf("strand has %d blocks, want %d", s.NumBlocks(), frames/gran)
	}

	// Verify payload integrity frame by frame.
	rd := strand.NewReader(rig.d, s)
	for f := uint64(0); f < frames; f++ {
		got, err := rd.Unit(f)
		if err != nil {
			t.Fatalf("unit %d: %v", f, err)
		}
		if err := media.ValidateFrameSeq(got, f); err != nil {
			t.Fatalf("unit %d: %v", f, err)
		}
	}

	// Play it back with strict continuity; expect zero violations.
	plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatalf("admit play: %v", err)
	}
	rig.m.RunUntilDone()
	v, err := rig.m.Violations(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("playback had %d violations, first %+v", len(v), v[0])
	}
	prog, _ := rig.m.Progress(id)
	if !prog.Done || prog.BlocksServed != frames/gran {
		t.Fatalf("progress %+v", prog)
	}
}

func TestScatteringWithinDerivedBounds(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 150, 18000, 3, 30, 7)
	dv, err := continuity.Derive(continuity.Config{Arch: continuity.Pipelined}, 6,
		continuity.Media{Name: "video", UnitBits: 18000 * 8, Rate: 30}, rig.dev)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range s.ScatterTimes(rig.d.Geometry()) {
		if sec := continuity.Seconds(st); sec > dv.MaxScattering {
			t.Fatalf("gap %d: scattering %.4fs exceeds bound %.4fs", i, sec, dv.MaxScattering)
		}
	}
}

func TestAdmissionRejectsBeyondNMax(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	// A demanding request template: large blocks, modest device.
	tmpl := continuity.Request{Name: "tmpl", Granularity: 3, UnitBits: 18000 * 8, Rate: 30, Scattering: 0.02}
	nmax := rig.m.Admission().NMax(tmpl)
	if nmax < 1 {
		t.Fatalf("nmax = %d; geometry too slow for even one stream", nmax)
	}
	s := rig.recordVideo(t, 60, 18000, 3, 30, 1)
	// NaiveJump keeps the clock frozen across admissions so no stream
	// can finish mid-test and free its slot.
	rig.m.SetPolicy(NaiveJump)
	admitted := 0
	for i := 0; i <= nmax; i++ {
		plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2, Scattering: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		plan.Admission = tmpl
		if _, _, err := rig.m.AdmitPlay(plan); err != nil {
			break
		}
		admitted++
	}
	if admitted > nmax {
		t.Fatalf("admitted %d requests, Eq. 17 bound is %d", admitted, nmax)
	}
	if admitted == 0 {
		t.Fatal("no request admitted at all")
	}
}

func TestPauseResumeShiftsDeadlines(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 90, 18000, 3, 30, 3)
	plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Service a few rounds, pause, let virtual time pass, resume.
	for i := 0; i < 3; i++ {
		rig.m.RunRound()
	}
	if err := rig.m.Pause(id, false); err != nil {
		t.Fatal(err)
	}
	// With everything paused a round does nothing; simulate elapsed
	// wall time via a second, trivial request.
	if _, err := rig.m.Resume(id); err != nil {
		t.Fatal(err)
	}
	rig.m.RunUntilDone()
	if v, _ := rig.m.Violations(id); len(v) != 0 {
		t.Fatalf("pause/resume caused %d violations", len(v))
	}
}

func TestDestructivePauseFreesAdmissionSlot(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 60, 18000, 3, 30, 9)
	plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	before := rig.m.ActiveRequests()
	if err := rig.m.Pause(id, true); err != nil {
		t.Fatal(err)
	}
	if got := rig.m.ActiveRequests(); got != before-1 {
		t.Fatalf("destructive pause left %d active, want %d", got, before-1)
	}
	if _, err := rig.m.Resume(id); err != nil {
		t.Fatalf("resume re-admission failed: %v", err)
	}
	if got := rig.m.ActiveRequests(); got != before {
		t.Fatalf("resume left %d active, want %d", got, before)
	}
	rig.m.RunUntilDone()
}

func TestSilenceEliminationStoresNoData(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	const units, unitBytes, gran = 400, 800, 4 // 0.1 s audio units
	det := media.DefaultSilenceDetector()
	w, err := strand.NewWriter(rig.d, rig.a, strand.WriterConfig{
		ID:          rig.st.NewID(),
		Medium:      layout.Audio,
		Rate:        10,
		UnitBytes:   unitBytes,
		Granularity: gran,
		Constraint:  alloc.Constraint{MinCylinders: 1, MaxCylinders: 50},
		Silence:     &det,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewAudioSource(units, unitBytes, 10, 0.5, 8, 11)
	plan := PlanRecord("audio", w, src, gran, units, 0.01, 4)
	if _, _, err := rig.m.AdmitRecord(plan); err != nil {
		t.Fatal(err)
	}
	rig.m.RunUntilDone()
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	silent := 0
	for i := 0; i < s.NumBlocks(); i++ {
		e, _ := s.Block(i)
		if e.Silent() {
			silent++
		}
	}
	if silent == 0 {
		t.Fatal("no silence blocks eliminated from a half-silent source")
	}
	if silent == s.NumBlocks() {
		t.Fatal("all blocks silent; detector threshold broken")
	}
	// Stored sectors should be roughly half of a no-elimination strand.
	stored := 0
	for _, r := range s.MediaRuns() {
		stored += r.Sectors
	}
	full := s.NumBlocks() * s.BlockSectors(rig.d.Geometry().SectorSize)
	if stored >= full {
		t.Fatalf("stored %d sectors, full strand would be %d", stored, full)
	}
}

func TestPauseSemanticsAtCapacity(t *testing.T) {
	// §4.1: "a destructive PAUSE … causes resources to be deallocated
	// during the PAUSE"; a non-destructive one keeps them. At
	// capacity, only a destructive pause frees a slot for a new
	// request, and the paused request's later RESUME must re-run
	// admission — and can be rejected.
	rig := newRig(t, disk.DefaultGeometry())
	tmpl := continuity.Request{Name: "tmpl", Granularity: 3, UnitBits: 18000 * 8, Rate: 30, Scattering: rig.scattering()}
	nmax := rig.m.Admission().NMax(tmpl)
	if nmax < 2 {
		t.Skip("device too slow for the scenario")
	}
	s := rig.recordVideo(t, 120, 18000, 3, 30, 77)
	rig.m.SetPolicy(NaiveJump) // keep the clock frozen across admissions

	var ids []RequestID
	for i := 0; i < nmax; i++ {
		plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2, Scattering: rig.scattering()})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := rig.m.AdmitPlay(plan)
		if err != nil {
			t.Fatalf("admission %d of %d: %v", i+1, nmax, err)
		}
		ids = append(ids, id)
	}
	newPlan := func() PlayPlan {
		plan, err := PlanStrandPlay(rig.d, s, PlanOptions{ReadAhead: 2, Scattering: rig.scattering()})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}

	// Full: the next admission must fail.
	if _, _, err := rig.m.AdmitPlay(newPlan()); err == nil {
		t.Fatal("admission beyond n_max accepted")
	}

	// A non-destructive pause does NOT free the slot.
	if err := rig.m.Pause(ids[0], false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rig.m.AdmitPlay(newPlan()); err == nil {
		t.Fatal("non-destructive pause freed an admission slot")
	}
	if _, err := rig.m.Resume(ids[0]); err != nil {
		t.Fatal(err)
	}

	// A destructive pause DOES free the slot…
	if err := rig.m.Pause(ids[1], true); err != nil {
		t.Fatal(err)
	}
	newID, _, err := rig.m.AdmitPlay(newPlan())
	if err != nil {
		t.Fatalf("slot not freed by destructive pause: %v", err)
	}
	// …and the paused request's resume now fails admission.
	if _, err := rig.m.Resume(ids[1]); err == nil {
		t.Fatal("resume re-admission succeeded beyond n_max")
	}
	// After the interloper stops, the resume goes through.
	if err := rig.m.Stop(newID); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.m.Resume(ids[1]); err != nil {
		t.Fatalf("resume after slot reopened: %v", err)
	}
	rig.m.RunUntilDone()
}
