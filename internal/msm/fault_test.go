package msm

import (
	"testing"
	"time"

	"mmfs/internal/cache"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/obs"
	"mmfs/internal/strand"
)

// inertScenario is active (so the wrapper injects) but never fires on
// its own: the bad range sits far past the disk. Tests drive faults
// deterministically with FailNextReads instead of probability draws.
func inertScenario() fault.Scenario {
	return fault.Scenario{Seed: 1, BadSectors: []fault.SectorRange{{Start: 1 << 40, Count: 1}}}
}

// newFaultRig records a clean strand on the raw disk, then rebuilds the
// manager over a fault-injection wrapper with the given scenario, so
// playback (not the recording) sees the faults.
func newFaultRig(t *testing.T, sc fault.Scenario) (*testRig, *fault.Disk, *strand.Strand) {
	t.Helper()
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 120, 18000, 3, 30, 42)
	fd := fault.New(rig.d, sc)
	rig.m = New(fd, continuity.AdmissionFor(rig.dev))
	return rig, fd, s
}

// admitFaultPlay plans the strand over the fault disk and admits it.
func admitFaultPlay(t *testing.T, rig *testRig, fd *fault.Disk, s *strand.Strand) RequestID {
	t.Helper()
	plan, err := PlanStrandPlay(fd, s, PlanOptions{ReadAhead: 2, Buffers: 4, Scattering: rig.scattering()})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatalf("admit play: %v", err)
	}
	return id
}

// TestRetryRecoversTransient verifies the first tier of the ladder: a
// transient fault is re-read within the round, charged to the round's
// slack, and the play completes with zero violations and zero degraded
// blocks.
func TestRetryRecoversTransient(t *testing.T) {
	rig, fd, s := newFaultRig(t, inertScenario())
	reg := obs.NewRegistry()
	rig.m.SetObs(reg, nil)
	rig.m.ForceK(4) // headroom: slack = 4γ − α − 4β is comfortably positive at n=1
	id := admitFaultPlay(t, rig, fd, s)
	fd.FailNextReads(1)
	rig.m.RunUntilDone()

	st := rig.m.Stats()
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if st.DegradedBlocks != 0 || st.FaultStops != 0 {
		t.Fatalf("degraded=%d faultStops=%d, want 0/0", st.DegradedBlocks, st.FaultStops)
	}
	v, err := rig.m.Violations(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Fatalf("retried play had %d violations, first %+v", len(v), v[0])
	}
	p, _ := rig.m.Progress(id)
	if !p.Done || p.BlocksServed != p.BlocksTotal {
		t.Fatalf("play incomplete after retry: %+v", p)
	}
	if got := reg.Counter("mmfs_retries_total").Value(); got != 1 {
		t.Fatalf("mmfs_retries_total = %d, want 1", got)
	}
	if got := reg.Counter("mmfs_degraded_blocks_total").Value(); got != 0 {
		t.Fatalf("mmfs_degraded_blocks_total = %d, want 0", got)
	}
}

// TestDegradationKeepsStreamAdmitted verifies the second tier: with the
// retry budget at zero, faulted blocks are delivered as zero-fill,
// recorded as Degraded violations, and the stream still plays to
// completion — no abort, no admission churn.
func TestDegradationKeepsStreamAdmitted(t *testing.T) {
	rig, fd, s := newFaultRig(t, inertScenario())
	rig.m.SetFaultPolicy(FaultPolicy{MaxRetries: 0, ConsecFailLimit: 0})
	id := admitFaultPlay(t, rig, fd, s)
	fd.FailNextReads(3)
	rig.m.RunUntilDone()

	st := rig.m.Stats()
	if st.DegradedBlocks != 3 {
		t.Fatalf("degraded blocks = %d, want 3", st.DegradedBlocks)
	}
	if st.Retries != 0 || st.FaultStops != 0 {
		t.Fatalf("retries=%d faultStops=%d, want 0/0", st.Retries, st.FaultStops)
	}
	v, err := rig.m.Violations(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 {
		t.Fatalf("violations = %d, want 3", len(v))
	}
	for _, viol := range v {
		if viol.Cause != CauseDegraded {
			t.Fatalf("violation cause %v, want degraded: %+v", viol.Cause, viol)
		}
	}
	p, _ := rig.m.Progress(id)
	if !p.Done || p.BlocksServed != p.BlocksTotal {
		t.Fatalf("degraded play did not complete: %+v", p)
	}
	if p.DegradedBlocks != 3 {
		t.Fatalf("progress degraded = %d, want 3", p.DegradedBlocks)
	}
}

// TestBadSectorDegradesWithoutRetry verifies persistent defects skip
// the retry tier (re-reading a grown defect cannot succeed) and degrade
// directly, without stopping the play.
func TestBadSectorDegradesWithoutRetry(t *testing.T) {
	rig := newRig(t, disk.DefaultGeometry())
	s := rig.recordVideo(t, 120, 18000, 3, 30, 42)
	e, err := s.Block(2)
	if err != nil {
		t.Fatal(err)
	}
	fd := fault.New(rig.d, fault.Scenario{Seed: 1, BadSectors: []fault.SectorRange{{Start: int(e.Sector), Count: 1}}})
	rig.m = New(fd, continuity.AdmissionFor(rig.dev))
	id := admitFaultPlay(t, rig, fd, s)
	rig.m.RunUntilDone()

	st := rig.m.Stats()
	if st.Retries != 0 {
		t.Fatalf("bad sector was retried %d times", st.Retries)
	}
	if st.DegradedBlocks != 1 {
		t.Fatalf("degraded blocks = %d, want 1", st.DegradedBlocks)
	}
	v, _ := rig.m.Violations(id)
	if len(v) != 1 || v[0].Cause != CauseDegraded || v[0].Block != 2 {
		t.Fatalf("violations = %+v, want one degraded at block 2", v)
	}
	p, _ := rig.m.Progress(id)
	if !p.Done || p.BlocksServed != p.BlocksTotal {
		t.Fatalf("play over bad sector did not complete: %+v", p)
	}
}

// TestEscalationStopsStream verifies the third tier: a stream whose
// deliveries are all degraded is stopped once ConsecFailLimit
// consecutive failures accumulate, freeing its admission slot.
func TestEscalationStopsStream(t *testing.T) {
	rig, fd, s := newFaultRig(t, fault.Scenario{Seed: 1, ReadErrorRate: 1})
	_ = fd
	rig.m.SetFaultPolicy(FaultPolicy{MaxRetries: 0, ConsecFailLimit: 3})
	id := admitFaultPlay(t, rig, fd, s)
	rig.m.RunUntilDone()

	st := rig.m.Stats()
	if st.FaultStops != 1 {
		t.Fatalf("fault stops = %d, want 1", st.FaultStops)
	}
	if st.DegradedBlocks != 3 {
		t.Fatalf("degraded blocks = %d, want exactly the escalation threshold 3", st.DegradedBlocks)
	}
	p, _ := rig.m.Progress(id)
	if !p.Done {
		t.Fatalf("escalated stream not marked done: %+v", p)
	}
	if p.BlocksServed >= p.BlocksTotal {
		t.Fatalf("escalated stream claims full service: %+v", p)
	}
}

// TestPauseResumeResetsConsecFails drives the satellite requirement:
// Pause/Resume mid-degradation works, and Resume gives the stream a
// clean run at the escalation threshold (consecutive-failure counter
// resets).
func TestPauseResumeResetsConsecFails(t *testing.T) {
	rig, fd, s := newFaultRig(t, fault.Scenario{Seed: 1, ReadErrorRate: 1})
	_ = fd
	rig.m.SetFaultPolicy(FaultPolicy{MaxRetries: 0, ConsecFailLimit: 50})
	id := admitFaultPlay(t, rig, fd, s)

	// Degrade a few deliveries, then pause mid-storm.
	for i := 0; i < 20; i++ {
		p, _ := rig.m.Progress(id)
		if p.ConsecFaults >= 2 {
			break
		}
		rig.m.RunRound()
	}
	p, _ := rig.m.Progress(id)
	if p.ConsecFaults < 2 {
		t.Fatalf("storm did not accumulate consecutive faults: %+v", p)
	}
	if err := rig.m.Pause(id, false); err != nil {
		t.Fatalf("pause mid-degradation: %v", err)
	}
	if _, err := rig.m.Resume(id); err != nil {
		t.Fatalf("resume mid-degradation: %v", err)
	}
	p, _ = rig.m.Progress(id)
	if p.ConsecFaults != 0 {
		t.Fatalf("consecutive-failure counter survived Resume: %+v", p)
	}

	// The stream keeps degrading after resume and, with the limit out
	// of reach, still plays out every block.
	rig.m.RunUntilDone()
	st := rig.m.Stats()
	if st.FaultStops != 0 {
		t.Fatalf("unexpected escalation after resume: %d", st.FaultStops)
	}
	p, _ = rig.m.Progress(id)
	if !p.Done || p.BlocksServed != p.BlocksTotal {
		t.Fatalf("resumed stream did not complete: %+v", p)
	}
	if p.DegradedBlocks == 0 {
		t.Fatal("expected degraded deliveries after resume")
	}
}

// TestStopMidDegradation verifies an operator STOP lands cleanly while
// the stream is degrading: the request ends without an escalation stop
// and the manager drains.
func TestStopMidDegradation(t *testing.T) {
	rig, fd, s := newFaultRig(t, fault.Scenario{Seed: 1, ReadErrorRate: 1})
	_ = fd
	rig.m.SetFaultPolicy(FaultPolicy{MaxRetries: 0, ConsecFailLimit: 0})
	id := admitFaultPlay(t, rig, fd, s)
	for i := 0; i < 5; i++ {
		rig.m.RunRound()
	}
	st := rig.m.Stats()
	if st.DegradedBlocks == 0 {
		t.Fatal("setup: no degradation before stop")
	}
	if err := rig.m.Stop(id); err != nil {
		t.Fatalf("stop mid-degradation: %v", err)
	}
	rig.m.RunUntilDone()
	p, _ := rig.m.Progress(id)
	if !p.Done {
		t.Fatalf("stopped stream not done: %+v", p)
	}
	if got := rig.m.Stats().FaultStops; got != 0 {
		t.Fatalf("operator stop counted as escalation: %d", got)
	}
}

// TestFollowerFallsBackWhenLeaderDegrades verifies the cache
// interaction: a leader's degraded (zero-fill) block is never cached,
// so its follower misses there, demotes, and finishes from the disk —
// clean data, no degraded deliveries of its own, no abort.
func TestFollowerFallsBackWhenLeaderDegrades(t *testing.T) {
	rig, fd, s := newFaultRig(t, inertScenario())
	rig.m.SetCache(cache.New(16 << 20))
	rig.m.SetFaultPolicy(FaultPolicy{MaxRetries: 0, ConsecFailLimit: 8})

	leader := admitFaultPlay(t, rig, fd, s)
	rig.m.RunFor(400 * time.Millisecond)

	plan, err := PlanStrandPlay(fd, s, PlanOptions{ReadAhead: 2, Buffers: 4, Scattering: rig.scattering()})
	if err != nil {
		t.Fatal(err)
	}
	follower, dec, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatalf("admit follower: %v", err)
	}
	if !dec.CacheServed {
		t.Fatal("setup: follower was not admitted cache-served")
	}

	fd.FailNextReads(1) // the leader's next disk read degrades
	rig.m.RunUntilDone()

	st := rig.m.Stats()
	if st.DegradedBlocks != 1 {
		t.Fatalf("degraded blocks = %d, want 1 (the leader's)", st.DegradedBlocks)
	}
	if st.Demotions == 0 {
		t.Fatal("follower never demoted despite the hole in the cache feed")
	}
	if st.FaultStops != 0 {
		t.Fatalf("unexpected fault stops: %d", st.FaultStops)
	}
	lp, _ := rig.m.Progress(leader)
	if !lp.Done || lp.BlocksServed != lp.BlocksTotal || lp.DegradedBlocks != 1 {
		t.Fatalf("leader state: %+v", lp)
	}
	fp, _ := rig.m.Progress(follower)
	if !fp.Done || fp.BlocksServed != fp.BlocksTotal {
		t.Fatalf("follower did not complete: %+v", fp)
	}
	if fp.DegradedBlocks != 0 {
		t.Fatalf("follower has degraded deliveries: %+v", fp)
	}
	fv, _ := rig.m.Violations(follower)
	for _, viol := range fv {
		if viol.Cause == CauseDegraded {
			t.Fatalf("follower recorded a degraded violation: %+v", viol)
		}
	}
}
