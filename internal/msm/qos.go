package msm

import (
	"fmt"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
)

// This file is the storage manager's side of QoS load shedding (see
// internal/continuity/qos.go for the admission math). With QoS enabled
// every PLAY admission becomes a class-ordered capacity negotiation
// instead of a binary accept/reject:
//
//  1. The candidate is tried at full rate.
//  2. If Eq. 18 has no room, streams of strictly lower class are
//     demoted — best-effort before standard, latest-admitted first —
//     until the candidate fits. Premium is never demoted.
//  3. If shedding cannot make room and the candidate itself is
//     standard or best-effort, it is admitted sub-sampled at the
//     smallest stride that fits (§3.3.2's skip machinery at 1×
//     display time: every stride-th block fetched, disk cost
//     ~1/stride, deadlines untouched).
//  4. Only when all of that fails is the request rejected, and any
//     dry-run demotions are rolled back.
//
// Each round, classPass revisits the assignments against Eq. 18's
// measured slack k·γ − n·α − n·k·β: freed capacity promotes degraded
// streams back toward full rate strictly by class then admission
// order, and a set that has become infeasible (rising load) demotes
// best-effort first. The pass is allocation-free in steady state — the
// round loop's 0 allocs/op gate stays in force with it enabled.
//
// Cache-served followers are the other degraded admission mode
// ("cache-only followers behind a leader of the same rope"): they are
// free, so AdmitPlay tries cache adoption before any of this runs, and
// the pass never demotes them — the cache demotion path owns them.

// QoSPolicy configures load-driven graceful degradation.
type QoSPolicy struct {
	// MaxStride bounds the sub-sampling stride load shedding may
	// impose; strides are powers of two up to this value. Values < 2
	// disable QoS entirely (admission stays binary accept/reject).
	MaxStride int
}

// SetQoS installs the QoS policy. The zero policy disables QoS, which
// is the manager's default: experiments and tests that probe exact
// n_max rejection boundaries stay unaffected unless they opt in.
func (m *Manager) SetQoS(p QoSPolicy) {
	if p.MaxStride < 0 {
		p.MaxStride = 0
	}
	m.qos = p
}

// QoS reports the policy in use.
func (m *Manager) QoS() QoSPolicy { return m.qos }

func (m *Manager) qosEnabled() bool { return m.qos.MaxStride >= 2 }

// effAdm is the admission-control view of the request: a load-shed
// play is charged at its Degraded() stride, everything else at full
// rate.
func (r *request) effAdm() continuity.Request {
	if r.kind == Play && r.play.stride > 1 {
		return continuity.Degraded(r.adm, r.play.stride)
	}
	return r.adm
}

// strideOf normalizes the play's stride (zero value means full rate).
func strideOf(ps *playState) int {
	if ps.stride < 1 {
		return 1
	}
	return ps.stride
}

// ClassStats summarizes one QoS class's live population.
type ClassStats struct {
	// Active is the class's live plays (disk-bound and cache-served).
	Active int
	// Degraded is the subset currently load-shed (stride > 1).
	Degraded int
	// EffectiveRate is the mean delivered unit rate across the
	// class's live plays (Rate/stride), 0 when the class is idle.
	EffectiveRate float64
}

// QoSStats reports the per-class stream populations and mean effective
// rates, indexed by continuity.Class.
func (m *Manager) QoSStats() [continuity.NumClasses]ClassStats {
	var out [continuity.NumClasses]ClassStats
	for _, r := range m.reqs {
		if r.kind != Play || r.done {
			continue
		}
		c := &out[r.class]
		c.Active++
		s := strideOf(r.play)
		if s > 1 {
			c.Degraded++
		}
		c.EffectiveRate += r.adm.Rate / float64(s)
	}
	for i := range out {
		if out[i].Active > 0 {
			out[i].EffectiveRate /= float64(out[i].Active)
		}
	}
	return out
}

// admitClassed runs the class-ordered admission negotiation for a
// disk-bound play candidate. It returns the admission decision with
// Stride set to the granted quality (1 = full rate).
func (m *Manager) admitClassed(sp int, cand continuity.Request, class continuity.Class) (continuity.Decision, error) {
	// Block the nested transition rounds' classPass: promoting the
	// freshly shed victims before the candidate lands would undo the
	// negotiation mid-flight.
	m.inQoS = true
	//lint:ignore allocpath admission is a per-request control event; the deferred reset captures only the receiver
	defer func() { m.inQoS = false }()

	// Dry run: probe pure decisions (no transitions, no obs traffic)
	// while tentatively demoting victims, so a rejection can roll the
	// strides back untouched.
	type trial struct {
		r      *request
		stride int // stride before the dry run
	}
	var sheds []trial
	dec := m.decideAdmit(sp, cand, false)
	for !dec.Admitted {
		v := m.shedVictim(class)
		if v == nil {
			break
		}
		//lint:ignore allocpath admission is a per-request control event, not per-round work
		sheds = append(sheds, trial{v, strideOf(v.play)})
		v.play.stride = m.nextStride(strideOf(v.play))
		dec = m.decideAdmit(sp, cand, false)
	}
	stride := 1
	if !dec.Admitted && class <= continuity.Standard {
		// Shedding lower classes was not enough (or there were none);
		// degrade the candidate itself.
		for s := 2; s <= m.qos.MaxStride; s *= 2 {
			if d := m.decideAdmit(sp, continuity.Degraded(cand, s), false); d.Admitted {
				dec, stride = d, s
				break
			}
		}
	}
	if !dec.Admitted {
		// Roll the dry-run demotions back, newest first so repeated
		// demotions of one victim restore its original stride.
		for i := len(sheds) - 1; i >= 0; i-- {
			sheds[i].r.play.stride = sheds[i].stride
		}
		m.noteAdmission(false, false)
		//lint:ignore allocpath admission rejection wraps the reason once, on the error path
		return dec, fmt.Errorf("%w: %s", ErrAdmissionRejected, dec.Reason)
	}

	// Commit: bookkeep each distinct victim's demotion (its stride is
	// already at the negotiated value), then run the real admission so
	// the stepwise k transition and the obs counters engage.
	for i, t := range sheds {
		first := true
		for j := 0; j < i; j++ {
			if sheds[j].r == t.r {
				first = false
				break
			}
		}
		if first {
			m.noteDemotion(t.r)
		}
	}
	eff := cand
	if stride > 1 {
		eff = continuity.Degraded(cand, stride)
	}
	dec, err := m.admit(sp, eff, false)
	dec.Stride = stride
	return dec, err
}

// nextStride is one demotion step: the next power-of-two stride,
// capped at the policy bound.
func (m *Manager) nextStride(s int) int {
	if s < 1 {
		s = 1
	}
	s *= 2
	if s > m.qos.MaxStride {
		s = m.qos.MaxStride
	}
	return s
}

// shedVictim picks the next stream to demote to make room for a
// candidate of the given class: among live disk-bound plays of
// strictly lower class that still have stride headroom, the lowest
// class first and the latest admitted (highest id) within a class.
// Premium candidates therefore shed standard and best-effort; a
// best-effort candidate has no one to shed. Returns nil when no
// demotable stream remains.
func (m *Manager) shedVictim(class continuity.Class) *request {
	var best *request
	for _, r := range m.reqs {
		if r.kind != Play || r.done || r.pause != nil || r.cacheServed || r.demoting {
			continue
		}
		if r.class >= class || strideOf(r.play) >= m.qos.MaxStride {
			continue
		}
		if best == nil || r.class < best.class || (r.class == best.class && r.id > best.id) {
			best = r
		}
	}
	return best
}

// noteDemotion records a committed load-shed demotion on a stream
// whose stride was already raised: the CauseLoadShed violation marking
// the quality change, the counters, the effective-rate sample, and the
// re-anchored skip pattern. A demoted leader stops feeding its cache
// followers (skipped blocks would starve them), so its cache stream
// closes; promotion back to full rate reopens it.
func (m *Manager) noteDemotion(r *request) {
	ps := r.play
	ps.strideBase = ps.nextFetch
	now := m.clock.Now()
	//lint:ignore allocpath demotions are rare load events; the violation is retained for the caller's report
	ps.violations = append(ps.violations, Violation{Block: ps.nextFetch, Deadline: now, Actual: now, Cause: CauseLoadShed})
	m.stats.Violations++
	m.stats.LoadDemotions++
	m.closeCacheStream(r)
	if m.obs != nil {
		m.obs.violations.Inc()
		m.obs.classDemotions[r.class].Inc()
		m.obs.effRate.Observe(r.adm.Rate / float64(strideOf(ps)))
	}
}

// notePromotion records a promotion to the given stride (1 = full
// rate), which the caller has already verified keeps Eq. 18 feasible.
func (m *Manager) notePromotion(r *request, stride int) {
	ps := r.play
	ps.stride = stride
	ps.strideBase = ps.nextFetch
	m.stats.Promotions++
	if stride == 1 {
		m.reopenCacheStream(r)
	}
	if m.obs != nil {
		m.obs.promotions[r.class].Inc()
		m.obs.effRate.Observe(r.adm.Rate / float64(stride))
	}
}

// feasibleNow reports whether Eq. 18 holds at the current k for the
// current effective admission sets (per spindle over an array).
//
// rt:hotpath
func (m *Manager) feasibleNow() bool {
	if m.array != nil {
		m.fillSpindleAdmissionSets()
		for _, ln := range m.lanes {
			if len(ln.admSet) > 0 && !m.adm.FeasibleTransient(ln.admSet, m.k) {
				return false
			}
		}
		return true
	}
	set := m.admissionSet()
	return len(set) == 0 || m.adm.FeasibleTransient(set, m.k)
}

// strideFeasible probes whether assigning the play the given stride
// keeps Eq. 18 feasible, leaving the stream's state untouched.
//
// rt:hotpath
func (m *Manager) strideFeasible(r *request, stride int) bool {
	old := r.play.stride
	r.play.stride = stride
	ok := m.feasibleNow()
	r.play.stride = old
	return ok
}

// classPass is the per-round QoS promotion/demotion pass, run at the
// top of every round (after cache demotions, before service). Steady
// state — nothing degraded, set feasible — costs one Eq. 18 evaluation
// over scratch arenas and allocates nothing.
//
// rt:hotpath
func (m *Manager) classPass() {
	if !m.qosEnabled() || m.inQoS {
		return
	}
	// Rising load: while the effective set no longer satisfies Eq. 18
	// (a resume, a repositioned stream, a shrunk array budget), shed
	// best-effort first, then standard; premium is never touched. When
	// every demotable stream is at MaxStride the loop stops — the
	// admitted premium load was itself feasible, so this terminates
	// with at worst the pre-pass violation exposure.
	for !m.feasibleNow() {
		v := m.shedVictim(continuity.Premium)
		if v == nil {
			break
		}
		v.play.stride = m.nextStride(strideOf(v.play))
		m.noteDemotion(v)
	}
	m.promotePass()
}

// promotePass hands freed capacity back: degraded streams are visited
// strictly by class (premium would come first, but premium is never
// degraded) then admission order, and each is promoted to the smallest
// stride — full rate first — that keeps Eq. 18 feasible.
//
// rt:hotpath
func (m *Manager) promotePass() {
	sq := m.scratchQoS[:0]
	for _, r := range m.reqs {
		if r.kind == Play && !r.done && r.pause == nil && !r.cacheServed && r.play.stride > 1 {
			sq = alloc.Append(sq, r)
		}
	}
	m.scratchQoS = sq
	if len(sq) == 0 {
		return
	}
	// Insertion sort by (class desc, id asc): rounds carry few degraded
	// streams and the scratch slice keeps this allocation-free.
	for i := 1; i < len(sq); i++ {
		r := sq[i]
		j := i - 1
		for j >= 0 && promotesBefore(r, sq[j]) {
			sq[j+1] = sq[j]
			j--
		}
		sq[j+1] = r
	}
	for _, r := range sq {
		cur := r.play.stride
		for s := 1; s < cur; s *= 2 {
			if m.strideFeasible(r, s) {
				m.notePromotion(r, s)
				break
			}
		}
	}
}

// promotesBefore orders the promotion queue: higher class first,
// earlier admission (lower id) within a class.
func promotesBefore(a, b *request) bool {
	if a.class != b.class {
		return a.class > b.class
	}
	return a.id < b.id
}

// qosRateBuckets are the effective-rate histogram's bucket uppers in
// media units per second: powers of two up to video rates, with 15/30
// for the NTSC frame-rate family and 60 for HDTV.
func qosRateBuckets() []float64 {
	return []float64{0.5, 1, 2, 4, 8, 15, 30, 60}
}
