package msm

import (
	"errors"
	"testing"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

// stripedRig bundles the substrate for striped-array manager tests:
// p spindles behind one disk.Array, with the allocator and strand
// store working in the array's logical address space.
type stripedRig struct {
	raw []*disk.Disk // physical spindles (under any fault wrapper)
	arr *disk.Array
	a   *alloc.Allocator
	st  *strand.Store
	m   *Manager
	dev continuity.Device
	p   int
	sc  int // stripe cylinders
}

// newStripedRig builds a p-spindle array with the given stripe. When
// faultSpindle ≥ 0 and the scenario is active, that one spindle is
// wrapped in fault injection; the others stay healthy.
func newStripedRig(t *testing.T, p, stripe, faultSpindle int, sc fault.Scenario) *stripedRig {
	t.Helper()
	g := disk.DefaultGeometry()
	devs := make([]disk.Device, p)
	raw := make([]*disk.Disk, p)
	for i := range devs {
		raw[i] = disk.MustNew(g)
		if i == faultSpindle && sc.Active() {
			devs[i] = fault.New(raw[i], sc)
		} else {
			devs[i] = raw[i]
		}
	}
	arr := disk.MustNewArray(devs, stripe)
	a, err := alloc.New(arr.Geometry(), 64)
	if err != nil {
		t.Fatal(err)
	}
	lg := arr.Geometry()
	dev := continuity.Device{
		TransferRate: lg.TransferRateBits(),
		MaxAccess:    continuity.Seconds(lg.MaxAccessTime()),
		MinAccess:    continuity.Seconds(lg.MinAccessTime()),
	}
	return &stripedRig{
		raw: raw, arr: arr, a: a,
		st:  strand.NewStore(arr, a),
		m:   New(arr, continuity.AdmissionFor(dev)),
		dev: dev, p: p, sc: stripe,
	}
}

func (r *stripedRig) scattering() float64 {
	return continuity.Seconds(r.arr.Geometry().AccessTime(targetCylinders))
}

// logicalStart maps (spindle, spindle-local cylinder) to the logical
// cylinder a writer must start at for the data to land there.
func (r *stripedRig) logicalStart(spindle, localCyl int) int {
	return (localCyl/r.sc*r.p+spindle)*r.sc + localCyl%r.sc
}

// recordOn writes a synthetic video strand whose blocks land on the
// given spindle, starting at the given spindle-local cylinder.
func (r *stripedRig) recordOn(t *testing.T, spindle, localCyl, frames int, seed int64) *strand.Strand {
	t.Helper()
	w, err := strand.NewWriter(r.arr, r.a, strand.WriterConfig{
		ID:            r.st.NewID(),
		Medium:        layout.Video,
		Rate:          30,
		UnitBytes:     18000,
		Granularity:   3,
		Constraint:    alloc.Constraint{MinCylinders: 1, MaxCylinders: targetCylinders},
		StartCylinder: r.logicalStart(spindle, localCyl),
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVideoSource(frames, 18000, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	r.st.Put(s)
	// The test's placement assumption: the whole strand must sit on
	// the intended spindle for per-spindle admission and lane routing
	// to be exercised as designed.
	for i := 0; i < s.NumBlocks(); i++ {
		e, err := s.Block(i)
		if err != nil {
			t.Fatal(err)
		}
		if sp, one := r.arr.SpindleRange(int(e.Sector), int(e.SectorCount)); !one || sp != spindle {
			t.Fatalf("strand block %d landed on spindle %d (one=%v), want %d", i, sp, one, spindle)
		}
	}
	return s
}

// TestStripedRoundParallelService admits the per-spindle n_max on every
// spindle of a 4-way array — p times the single-spindle bound — and
// verifies the parallel rounds deliver every stream violation-free with
// all spindles doing work.
func TestStripedRoundParallelService(t *testing.T) {
	const p, stripe = 4, 120
	rig := newStripedRig(t, p, stripe, -1, fault.Scenario{})
	if got := rig.m.StripeSpindles(); got != p {
		t.Fatalf("StripeSpindles = %d, want %d", got, p)
	}

	template := continuity.Request{
		Name: "tmpl", Granularity: 3, UnitBits: 18000 * 8, Rate: 30,
		Scattering: rig.scattering(),
	}
	nmax := rig.m.Admission().NMax(template)
	if nmax < 2 {
		t.Fatalf("single-spindle n_max = %d; geometry too tight for the test", nmax)
	}
	total := p * nmax

	if total <= nmax {
		t.Fatalf("aggregate %d does not exceed the single-device bound %d", total, nmax)
	}
	strands := make([]*strand.Strand, total)
	for j := range strands {
		strands[j] = rig.recordOn(t, j%p, (j/p)*stripe, 300, int64(9000+j))
	}
	mkPlan := func(s *strand.Strand) PlayPlan {
		plan, err := PlanStrandPlay(rig.arr, s, PlanOptions{ReadAhead: 1, Buffers: 16, Scattering: rig.scattering()})
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}

	// Admission math first, on a manager that runs no rounds during
	// admission (NaiveJump skips the transition rounds, which would
	// otherwise start draining the early streams): the full p·n_max
	// population is admitted, and the next candidate on a saturated
	// spindle fails its per-spindle Eq. 18.
	gate := New(rig.arr, continuity.AdmissionFor(rig.dev))
	gate.SetPolicy(NaiveJump)
	for j, s := range strands {
		if _, _, err := gate.AdmitPlay(mkPlan(s)); err != nil {
			t.Fatalf("stream %d (spindle %d): %v — aggregate should reach p·n_max = %d", j, j%p, err, total)
		}
	}
	extra := rig.recordOn(t, 0, nmax*stripe, 300, 9999)
	if _, _, err := gate.AdmitPlay(mkPlan(extra)); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("stream %d on a full spindle: err = %v, want admission rejection", total, err)
	}

	// Service on the rig's stepwise manager: transparent k transitions,
	// every stream delivered violation-free by the parallel sub-rounds.
	var ids []RequestID
	for j, s := range strands {
		id, _, err := rig.m.AdmitPlay(mkPlan(s))
		if err != nil {
			t.Fatalf("stream %d (spindle %d): %v", j, j%p, err)
		}
		ids = append(ids, id)
	}
	rig.m.RunUntilDone()

	for j, id := range ids {
		pr, err := rig.m.Progress(id)
		if err != nil {
			t.Fatal(err)
		}
		if !pr.Done || pr.BlocksServed != pr.BlocksTotal {
			t.Fatalf("stream %d: served %d/%d, done=%v", j, pr.BlocksServed, pr.BlocksTotal, pr.Done)
		}
		if pr.Violations != 0 {
			v, _ := rig.m.Violations(id)
			t.Fatalf("stream %d: %d violations, first %+v", j, pr.Violations, v[0])
		}
	}
	for i, d := range rig.raw {
		if d.Stats().SectorsRead == 0 {
			t.Fatalf("spindle %d read nothing; striping routed no work to it", i)
		}
	}
	if st := rig.m.Stats(); st.Rounds == 0 || st.Violations != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestStripedDegradedSpindleIsolation wraps one spindle in permanent
// transient faults: its streams degrade (and eventually escalate to a
// stop), while the other spindles' streams play through untouched.
func TestStripedDegradedSpindleIsolation(t *testing.T) {
	const p, stripe, sick = 4, 120, 1
	rig := newStripedRig(t, p, stripe, sick, fault.Scenario{Seed: 42, ReadErrorRate: 1})

	ids := make([]RequestID, p)
	for sp := 0; sp < p; sp++ {
		s := rig.recordOn(t, sp, 0, 150, int64(9100+sp))
		plan, err := PlanStrandPlay(rig.arr, s, PlanOptions{ReadAhead: 1, Buffers: 64, Scattering: rig.scattering()})
		if err != nil {
			t.Fatal(err)
		}
		ids[sp], _, err = rig.m.AdmitPlay(plan)
		if err != nil {
			t.Fatal(err)
		}
	}
	rig.m.RunUntilDone()

	for sp, id := range ids {
		pr, err := rig.m.Progress(id)
		if err != nil {
			t.Fatal(err)
		}
		if sp == sick {
			if pr.DegradedBlocks == 0 {
				t.Fatalf("sick spindle's stream saw no degradation: %+v", pr)
			}
			continue
		}
		if pr.Violations != 0 || pr.DegradedBlocks != 0 {
			t.Fatalf("healthy spindle %d's stream was disturbed: %d violations, %d degraded",
				sp, pr.Violations, pr.DegradedBlocks)
		}
		if !pr.Done || pr.BlocksServed != pr.BlocksTotal {
			t.Fatalf("healthy spindle %d's stream incomplete: %d/%d", sp, pr.BlocksServed, pr.BlocksTotal)
		}
	}
	st := rig.m.Stats()
	if st.DegradedBlocks == 0 {
		t.Fatalf("no degraded blocks recorded: %+v", st)
	}
	if st.FaultStops == 0 {
		t.Fatalf("all-degraded stream never escalated to a stop: %+v", st)
	}
}

// TestStripedSerialFallback verifies the partition invariant: a fetch
// window crossing a stripe-group boundary routes to the serial phase
// (laneSpindle reports no single home) and still plays correctly.
func TestStripedSerialFallback(t *testing.T) {
	const p, stripe = 2, 4 // tiny groups: strands straddle boundaries
	rig := newStripedRig(t, p, stripe, -1, fault.Scenario{})

	// ~17 cylinders of data across 4-cylinder groups: blocks hop
	// spindles within any k-window.
	w, err := strand.NewWriter(rig.arr, rig.a, strand.WriterConfig{
		ID: rig.st.NewID(), Medium: layout.Video, Rate: 30,
		UnitBytes: 18000, Granularity: 3,
		Constraint: alloc.Constraint{MinCylinders: 1, MaxCylinders: targetCylinders},
	})
	if err != nil {
		t.Fatal(err)
	}
	src := media.NewVideoSource(900, 18000, 30, 9200)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			t.Fatal(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	rig.st.Put(s)

	plan, err := PlanStrandPlay(rig.arr, s, PlanOptions{ReadAhead: 1, Buffers: 64, Scattering: rig.scattering()})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := rig.m.AdmitPlay(plan)
	if err != nil {
		t.Fatal(err)
	}
	rig.m.RunUntilDone()
	pr, err := rig.m.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Done || pr.Violations != 0 {
		t.Fatalf("boundary-crossing play: done=%v violations=%d", pr.Done, pr.Violations)
	}
	if rig.raw[0].Stats().SectorsRead == 0 || rig.raw[1].Stats().SectorsRead == 0 {
		t.Fatal("boundary-crossing strand should touch both spindles")
	}
}
