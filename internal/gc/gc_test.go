package gc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

func TestRegisterReleaseCounts(t *testing.T) {
	in := New()
	in.Register(1, 10)
	in.Register(2, 10)
	in.Register(1, 10) // idempotent per holder
	if in.Count(10) != 2 {
		t.Fatalf("count %d, want 2", in.Count(10))
	}
	if in.Release(1, 10) {
		t.Fatal("strand reported unreferenced while holder 2 remains")
	}
	if !in.Release(2, 10) {
		t.Fatal("last release must report unreferenced")
	}
	if in.Count(10) != 0 {
		t.Fatal("count after full release")
	}
	// Releasing again is harmless.
	if in.Release(2, 10) {
		t.Fatal("release of untracked strand reported unreferenced")
	}
}

func TestNilStrandIgnored(t *testing.T) {
	in := New()
	in.Register(1, strand.Nil)
	if len(in.Referenced()) != 0 {
		t.Fatal("nil strand tracked")
	}
	if in.Release(1, strand.Nil) {
		t.Fatal("nil strand released")
	}
}

func TestHoldersAndReferencedSorted(t *testing.T) {
	in := New()
	in.Register(3, 7)
	in.Register(1, 7)
	in.Register(2, 9)
	h := in.Holders(7)
	if len(h) != 2 || h[0] != 1 || h[1] != 3 {
		t.Fatalf("holders %v", h)
	}
	r := in.Referenced()
	if len(r) != 2 || r[0] != 7 || r[1] != 9 {
		t.Fatalf("referenced %v", r)
	}
}

func TestAuditDetectsDivergence(t *testing.T) {
	in := New()
	in.Register(1, 5)
	truth := map[uint64][]strand.ID{1: {5}}
	if err := in.Audit(truth); err != nil {
		t.Fatalf("clean audit failed: %v", err)
	}
	// Missing interest.
	if err := in.Audit(map[uint64][]strand.ID{1: {5}, 2: {5}}); err == nil {
		t.Fatal("missing interest not detected")
	}
	// Phantom interest.
	if err := in.Audit(map[uint64][]strand.ID{}); err == nil {
		t.Fatal("phantom interest not detected")
	}
}

// Property: after any sequence of register/release pairs, the table
// matches a reference map maintained independently.
func TestInterestsQuick(t *testing.T) {
	f := func(seed int64) bool {
		in := New()
		truth := make(map[uint64]map[strand.ID]bool)
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 200; step++ {
			h := uint64(rng.Intn(5) + 1)
			s := strand.ID(rng.Intn(8) + 1)
			if rng.Intn(2) == 0 {
				in.Register(h, s)
				if truth[h] == nil {
					truth[h] = make(map[strand.ID]bool)
				}
				truth[h][s] = true
			} else {
				in.Release(h, s)
				delete(truth[h], s)
			}
		}
		ref := make(map[uint64][]strand.ID)
		for h, set := range truth {
			for s := range set {
				ref[h] = append(ref[h], s)
			}
		}
		return in.Audit(ref) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// newStrandStore builds a store with n tiny recorded strands.
func newStrandStore(t *testing.T, n int) (*strand.Store, []strand.ID) {
	t.Helper()
	g := disk.Geometry{
		Cylinders: 100, Surfaces: 2, SectorsPerTrack: 32, SectorSize: 512,
		RPM: 3600, MinSeek: 2 * time.Millisecond, MaxSeek: 20 * time.Millisecond,
	}
	d := disk.MustNew(g)
	a, err := alloc.New(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := strand.NewStore(d, a)
	var ids []strand.ID
	for i := 0; i < n; i++ {
		w, err := strand.NewWriter(d, a, strand.WriterConfig{
			ID: st.NewID(), Medium: layout.Video, Rate: 30, UnitBytes: 256, Granularity: 2,
			Constraint: alloc.Constraint{MinCylinders: 1, MaxCylinders: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			if _, err := w.Append(media.Unit{Seq: uint64(j), Payload: media.FramePayload(int64(i), uint64(j), 256)}); err != nil {
				t.Fatal(err)
			}
		}
		s, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		st.Put(s)
		ids = append(ids, s.ID())
	}
	return st, ids
}

func TestCollectorReclaimsOnlyUnreferenced(t *testing.T) {
	st, ids := newStrandStore(t, 3)
	in := New()
	c := NewCollector(st, in)
	in.Register(100, ids[0])
	in.Register(100, ids[2])

	victims, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 1 || victims[0] != ids[1] {
		t.Fatalf("victims %v, want [%d]", victims, ids[1])
	}
	if st.Len() != 2 {
		t.Fatalf("store has %d strands", st.Len())
	}
	if c.Reclaimed != 1 {
		t.Fatalf("reclaimed counter %d", c.Reclaimed)
	}

	// Dropping the last interests reclaims the rest.
	in.Release(100, ids[0])
	in.Release(100, ids[2])
	victims, err = c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 2 || st.Len() != 0 {
		t.Fatalf("second collect: victims %v, store %d", victims, st.Len())
	}
}

func TestCollectorIdempotent(t *testing.T) {
	st, _ := newStrandStore(t, 2)
	in := New()
	c := NewCollector(st, in)
	if _, err := c.Collect(); err != nil {
		t.Fatal(err)
	}
	victims, err := c.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(victims) != 0 {
		t.Fatalf("second collect found %v", victims)
	}
	if c.Interests() != in {
		t.Fatal("interests accessor")
	}
}
