// Package gc implements interests-based garbage collection of media
// strands, after the Etherphone mechanism the paper adopts (§4): "A
// media strand, no part of which is referred to by any rope, can be
// deleted to reclaim its storage space. A garbage collection algorithm
// such as the one presented by Terry and Swinehart …, which uses a
// reference count mechanism called interests, can be used for this
// purpose."
//
// Each rope holds one interest per strand it references (counted once
// per referencing rope, however many intervals point into the strand).
// When a strand's interest count drops to zero it is reclaimable.
package gc

import (
	"fmt"
	"sort"

	"mmfs/internal/strand"
)

// Interests tracks which ropes are interested in which strands.
type Interests struct {
	// byStrand maps strand → set of interested holders.
	byStrand map[strand.ID]map[uint64]struct{}
}

// New creates an empty interest table.
func New() *Interests {
	return &Interests{byStrand: make(map[strand.ID]map[uint64]struct{})}
}

// Register records holder's interest in the strand. Registering twice
// is idempotent (interests are per holder, not per reference).
func (in *Interests) Register(holder uint64, s strand.ID) {
	if s == strand.Nil {
		return
	}
	set := in.byStrand[s]
	if set == nil {
		set = make(map[uint64]struct{})
		in.byStrand[s] = set
	}
	set[holder] = struct{}{}
}

// Release drops holder's interest in the strand and reports whether
// the strand is now unreferenced.
func (in *Interests) Release(holder uint64, s strand.ID) bool {
	if s == strand.Nil {
		return false
	}
	set := in.byStrand[s]
	if set == nil {
		return false
	}
	delete(set, holder)
	if len(set) == 0 {
		delete(in.byStrand, s)
		return true
	}
	return false
}

// Count reports how many holders are interested in the strand.
func (in *Interests) Count(s strand.ID) int { return len(in.byStrand[s]) }

// Holders lists the holders interested in the strand, ascending.
func (in *Interests) Holders(s strand.ID) []uint64 {
	out := make([]uint64, 0, len(in.byStrand[s]))
	for h := range in.byStrand[s] {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Referenced lists all strands with at least one interest, ascending.
func (in *Interests) Referenced() []strand.ID {
	out := make([]strand.ID, 0, len(in.byStrand))
	for s := range in.byStrand {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Collector sweeps a strand store, reclaiming every registered strand
// no interest refers to.
type Collector struct {
	store     *strand.Store
	interests *Interests
	// Reclaimed counts strands removed over the collector's life.
	Reclaimed uint64
}

// NewCollector ties an interest table to a strand store.
func NewCollector(st *strand.Store, in *Interests) *Collector {
	return &Collector{store: st, interests: in}
}

// Interests exposes the interest table.
func (c *Collector) Interests() *Interests { return c.interests }

// Collect removes every strand in the store with zero interests,
// returning the reclaimed strand IDs.
func (c *Collector) Collect() ([]strand.ID, error) {
	var victims []strand.ID
	for _, id := range c.store.IDs() {
		if c.interests.Count(id) == 0 {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		if err := c.store.Remove(id); err != nil {
			return nil, fmt.Errorf("gc: %w", err)
		}
		c.Reclaimed++
	}
	return victims, nil
}

// Audit verifies the interest table against a ground-truth reference
// map (holder → strands it references), returning an error describing
// the first divergence. Property tests drive it.
func (in *Interests) Audit(truth map[uint64][]strand.ID) error {
	want := make(map[strand.ID]map[uint64]struct{})
	for h, strands := range truth {
		for _, s := range strands {
			if s == strand.Nil {
				continue
			}
			if want[s] == nil {
				want[s] = make(map[uint64]struct{})
			}
			want[s][h] = struct{}{}
		}
	}
	for s, set := range in.byStrand {
		wset := want[s]
		if len(set) != len(wset) {
			return fmt.Errorf("gc: strand %d has %d interests, truth says %d", s, len(set), len(wset))
		}
		for h := range set {
			if _, ok := wset[h]; !ok {
				return fmt.Errorf("gc: strand %d wrongly claims interest from holder %d", s, h)
			}
		}
	}
	for s, wset := range want {
		if len(wset) > 0 && len(in.byStrand[s]) == 0 {
			return fmt.Errorf("gc: strand %d missing %d interests", s, len(wset))
		}
	}
	return nil
}
