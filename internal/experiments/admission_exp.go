package experiments

import (
	"fmt"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// NMax regenerates Eq. 17 across a device-speed sweep: the maximum
// number of simultaneous NTSC-rate requests n_max = ⌈γ/β⌉ − 1, and
// validates on the default device that n_max streams play clean while
// the (n_max+1)-th request is refused by admission control.
func NMax() Result {
	res := Result{
		ID:      "EXP-N17",
		Title:   "Maximum simultaneous requests (Eq. 17) across device speeds",
		Headers: []string{"device", "r_dt (Mbit/s)", "β (ms)", "γ (ms)", "n_max"},
	}
	type devCase struct {
		name string
		g    disk.Geometry
	}
	slow := disk.DefaultGeometry()
	slow.RPM = 2400
	slow.SectorsPerTrack = 40
	fast := disk.DefaultGeometry()
	fast.RPM = 5400
	fast.SectorsPerTrack = 84
	fast.MinSeek = time.Millisecond
	fast.MaxSeek = 18 * time.Millisecond
	cases := []devCase{
		{"slow (2400 RPM)", slow},
		{"default (3600 RPM)", disk.DefaultGeometry()},
		{"fast (5400 RPM)", fast},
	}
	const q = 3
	for _, c := range cases {
		dev := continuity.Device{
			TransferRate: c.g.TransferRateBits(),
			MaxAccess:    continuity.Seconds(c.g.MaxAccessTime()),
			MinAccess:    continuity.Seconds(c.g.MinAccessTime()),
		}
		adm := continuity.AdmissionFor(dev)
		m := ntsc()
		tmpl := continuity.Request{
			Name:        "video",
			Granularity: q,
			UnitBits:    m.UnitBits,
			Rate:        m.Rate,
			Scattering:  continuity.Seconds(c.g.AccessTime(32)),
		}
		reqs := []continuity.Request{tmpl}
		res.AddRow(c.name,
			fmt.Sprintf("%.1f", dev.TransferRate/1e6),
			ms(adm.Beta(reqs)),
			ms(adm.Gamma(reqs)),
			fmt.Sprint(adm.NMax(tmpl)))
	}

	// Validation on the default device: provision read-ahead and
	// buffers for the k the full population needs (Eq. 18).
	dev := stdDevice()
	adm := continuity.AdmissionFor(dev)
	tmpl := stdRequest(q)
	nmax := adm.NMax(tmpl)
	reqsMax := make([]continuity.Request, nmax)
	for i := range reqsMax {
		reqsMax[i] = tmpl
	}
	kFull, _ := adm.KTransient(reqsMax)
	r := newRig()
	strands := make([]*strand.Strand, nmax+1)
	for i := range strands {
		_, strands[i] = r.recordVideoRope(15, int64(1700+i))
	}
	viol, mgr := r.playStrands(strands[:nmax], kFull, 2*kFull, 0)
	res.Note("default device, n = n_max = %d streams at k = %d: %d violations (expect 0)", nmax, mgr.K(), viol)

	dec := adm.Admit(reqsMax, kFull, tmpl)
	verdict := "accepted (BUG: expected rejection)"
	if !dec.Admitted {
		verdict = fmt.Sprintf("rejected (expect rejected): %s", dec.Reason)
	}
	res.Note("n = n_max+1 = %d streams: admission %s", nmax+1, verdict)
	res.Note("paper: n_max = ⌈γ/β⌉ − 1, pessimistic because every request switch is charged the worst-case seek")
	return res
}

// Transition regenerates §3.4's transition analysis. A population of
// n_max−1 streams reaches steady state at k_old; admitting the n_max-th
// stream requires k_new ≫ k_old. Jumping straight to k_new makes the
// first rounds longer than the k_old blocks the old streams have
// buffered ("the number of blocks available for display are those of
// the previous round, which is k_old"), starving the streams serviced
// late in the round. The paper's stepwise algorithm grows k by one
// per round under Eq. 18, building up exactly the buffer depth each
// longer round needs.
func Transition() Result {
	res := Result{
		ID:      "EXP-TR",
		Title:   "Transient continuity during admission (Eq. 18): stepwise vs naive k transition",
		Headers: []string{"policy", "k before", "k after", "transition steps", "violations"},
	}
	dev := stdDevice()
	adm := continuity.AdmissionFor(dev)
	tmpl := stdRequest(3)
	nmax := adm.NMax(tmpl)
	pre := make([]continuity.Request, nmax-1)
	for i := range pre {
		pre[i] = tmpl
	}
	kOld, _ := adm.KTransient(pre)
	full := append(append([]continuity.Request(nil), pre...), tmpl)
	kNew, _ := adm.KTransient(full)

	run := func(policy msm.TransitionPolicy) (steps uint64, violations int) {
		r := newRig()
		strands := make([]*strand.Strand, nmax)
		for i := range strands {
			_, strands[i] = r.recordVideoRope(40, int64(2500+i))
		}
		mgr := r.fs.NewManager()
		mgr.SetPolicy(msm.Stepwise)
		var ids []msm.RequestID
		// Steady-state population at k_old, provisioned per §3.3.2
		// for the k in force.
		for _, s := range strands[:nmax-1] {
			plan, err := msm.PlanStrandPlay(r.fs.Disk(), s, msm.PlanOptions{
				ReadAhead:  kOld,
				Buffers:    2 * kOld,
				Scattering: r.fs.TargetScattering(),
			})
			if err != nil {
				panic(err)
			}
			id, _, err := mgr.AdmitPlay(plan)
			if err != nil {
				panic(err)
			}
			ids = append(ids, id)
		}
		mgr.RunFor(2 * time.Second)
		stepsBefore := mgr.Stats().TransitionSteps

		// The MRS grants the larger buffer allocation that k_new
		// requires, then admits under the policy being tested.
		for _, id := range ids {
			if err := mgr.SetBuffers(id, 2*kNew); err != nil {
				panic(err)
			}
		}
		mgr.SetPolicy(policy)
		plan, err := msm.PlanStrandPlay(r.fs.Disk(), strands[nmax-1], msm.PlanOptions{
			ReadAhead:  kNew,
			Buffers:    2 * kNew,
			Scattering: r.fs.TargetScattering(),
		})
		if err != nil {
			panic(err)
		}
		id, _, err := mgr.AdmitPlay(plan)
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
		mgr.RunUntilDone()
		for _, rid := range ids {
			v, err := mgr.Violations(rid)
			if err != nil {
				panic(err)
			}
			violations += len(v)
		}
		return mgr.Stats().TransitionSteps - stepsBefore, violations
	}

	for _, c := range []struct {
		name   string
		policy msm.TransitionPolicy
	}{
		{"stepwise (Eq. 18)", msm.Stepwise},
		{"naive jump", msm.NaiveJump},
	} {
		steps, viol := run(c.policy)
		res.AddRow(c.name, fmt.Sprint(kOld), fmt.Sprint(kNew), fmt.Sprint(steps), fmt.Sprint(viol))
	}
	res.Note("paper: \"Equation (15) guarantees continuity only in steady state, and not during transitions\"; Eq. 18's stepwise growth \"guarantees both transient and steady state continuity\"")
	res.Note("the naive jump's violations all fall in the first rounds after admission, on the streams serviced last in the round")
	return res
}

// ReadAhead regenerates §3.3.2's buffering and read-ahead analysis in
// two parts. Part one is the provisioning rule: buffers and read-ahead
// per architecture for average-case continuity over k blocks
// (sequential k/k, pipelined 2k/k, p-concurrent pk/pk). Part two
// measures provisioning under load: a population of n streams at the
// Eq. 18 k, with each stream's buffers and read-ahead swept downward
// from the rule — under-provisioned streams starve while the disk is
// busy elsewhere in the round, exactly the jitter the anti-jitter
// read-ahead absorbs.
func ReadAhead() Result {
	res := Result{
		ID:      "EXP-RA",
		Title:   "Buffering and anti-jitter read-ahead (§3.3.2): provisioning vs violations",
		Headers: []string{"streams", "k (Eq.18)", "read-ahead", "buffers", "violations"},
	}
	dev := stdDevice()
	adm := continuity.AdmissionFor(dev)
	tmpl := stdRequest(3)
	n := adm.NMax(tmpl)
	reqs := make([]continuity.Request, n)
	for i := range reqs {
		reqs[i] = tmpl
	}
	k, _ := adm.KTransient(reqs)

	r := newRig()
	strands := make([]*strand.Strand, n)
	for i := range strands {
		_, strands[i] = r.recordVideoRope(20, int64(3300+i))
	}
	for _, f := range []struct{ ra, buffers int }{
		{1, 2},
		{k / 4, k / 2},
		{k / 2, k},
		{k, 2 * k},
	} {
		ra, buffers := f.ra, f.buffers
		if ra < 1 {
			ra = 1
		}
		if buffers < 2 {
			buffers = 2
		}
		viol, _ := r.playStrands(strands, ra, buffers, k)
		res.AddRow(fmt.Sprint(n), fmt.Sprint(k), fmt.Sprint(ra), fmt.Sprint(buffers), fmt.Sprint(viol))
	}

	cfgs := []continuity.Config{
		{Arch: continuity.Sequential},
		{Arch: continuity.Pipelined},
		{Arch: continuity.Concurrent, P: 4},
	}
	for _, c := range cfgs {
		res.Note("%v architecture at k=%d: read-ahead %d blocks, %d buffers (§3.3.2)",
			c.Arch, k, c.ReadAhead(k), c.AvgBuffers(k))
	}
	h := continuity.SwitchReadAhead(dev.MaxAccess, 3, ntsc())
	res.Note("slow-motion/pause switch read-ahead h = ⌈l_max_seek · R/q⌉ = %d block(s) on this device; on a long-seek device (150 ms stroke) h = %d blocks",
		h, continuity.SwitchReadAhead(0.158, 1, ntsc()))
	res.Note("under-provisioned streams (buffers < 2k) cannot hold a round's worth of blocks and miss deadlines while the disk services the other n−1 streams")
	return res
}
