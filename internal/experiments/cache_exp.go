package experiments

import (
	"fmt"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/core"
	"mmfs/internal/msm"
)

// IntervalCache measures the interval-caching extension: trailing
// plays of a rope are fed from the blocks their leader just fetched,
// so they charge no disk time and admission control (the modified
// Eq. 18, evaluated over the disk-bound population only) can accept
// more concurrent plays than Eq. 17's n_max. The experiment sweeps the
// cache size and admits n_max + 3 staggered plays of one rope.
func IntervalCache() Result {
	res := Result{
		ID:      "EXP-IC",
		Title:   "Interval caching: concurrent plays of one rope vs cache size",
		Headers: []string{"cache (MiB)", "admitted", "disk-bound", "cache-served", "rejected", "violations", "demotions", "cache hit %"},
	}
	adm := continuity.AdmissionFor(stdDevice())
	tmpl := cachePlanRequest()
	nmax := adm.NMax(tmpl)
	reqs := make([]continuity.Request, nmax)
	for i := range reqs {
		reqs[i] = tmpl
	}
	k, ok := adm.KTransient(reqs)
	if !ok {
		panic("experiments: no feasible k at n_max")
	}
	// n_max + 2 attempts: rounds are atomic, so each stagger step can
	// advance several seconds of virtual time; more attempts than this
	// and the earliest plays finish (freeing admission slots) before
	// the last attempt, muddying the rejection count.
	attempts := nmax + 2

	for _, mb := range []int{0, 1, 4, 16} {
		fs, err := core.Format(core.Options{CacheMB: mb})
		if err != nil {
			panic(err)
		}
		r := &rig{fs: fs}
		_, s := r.recordVideoRope(20, 4100+int64(mb))
		mgr := fs.NewManager()
		// Pin k at the saturated population's Eq. 18 value so every
		// admission is step-free and the population stays concurrent.
		mgr.ForceK(k)
		var ids []msm.RequestID
		admitted, cached, rejected := 0, 0, 0
		for i := 0; i < attempts; i++ {
			plan, err := msm.PlanStrandPlay(fs.Disk(), s, msm.PlanOptions{
				ReadAhead:  2,
				Buffers:    4,
				Scattering: fs.TargetScattering(),
			})
			if err != nil {
				panic(err)
			}
			id, dec, err := mgr.AdmitPlay(plan)
			if err != nil {
				rejected++
			} else {
				admitted++
				ids = append(ids, id)
				if dec.CacheServed {
					cached++
				}
			}
			mgr.RunFor(400 * time.Millisecond)
		}
		diskBound := mgr.ActiveRequests()
		mgr.RunUntilDone()
		violations := 0
		for _, id := range ids {
			v, err := mgr.Violations(id)
			if err != nil {
				panic(err)
			}
			violations += len(v)
		}
		st := mgr.Stats()
		hitPct := 0.0
		if st.BlocksFetched > 0 {
			hitPct = 100 * float64(st.CacheHits) / float64(st.BlocksFetched)
		}
		res.AddRow(fmt.Sprint(mb), fmt.Sprint(admitted), fmt.Sprint(diskBound),
			fmt.Sprint(cached), fmt.Sprint(rejected), fmt.Sprint(violations),
			fmt.Sprint(st.Demotions), fmt.Sprintf("%.0f", hitPct))
	}

	res.Note("device n_max = %d (Eq. 17), k = %d (Eq. 18); %d staggered plays of one 20 s rope attempted per row", nmax, k, attempts)
	res.Note("cache-served followers charge no α/β terms: admission tests n_d·α + n_d·k·β ≤ k·γ over the disk-bound population only, so n > n_max plays run violation-free")
	res.Note("a cache smaller than the leader→follower gap admits nothing extra (the gap is not resident), and a marginal one admits followers that are later demoted back to disk service — still violation-free")
	res.Note("extension beyond the paper (interval caching à la Dan & Sitaram): the paper's admission control alone refuses every play past n_max")
	return res
}

// cachePlanRequest is the admission description an EXP-IC play plan
// actually carries, derived by planning a short rope: n_max must be
// computed against this, not a hand-built template, or the sweep's
// rejection point drifts off the plays being admitted.
func cachePlanRequest() continuity.Request {
	r := newRig()
	_, s := r.recordVideoRope(2, 4099)
	plan, err := msm.PlanStrandPlay(r.fs.Disk(), s, msm.PlanOptions{
		ReadAhead:  2,
		Buffers:    4,
		Scattering: r.fs.TargetScattering(),
	})
	if err != nil {
		panic(err)
	}
	return plan.Admission
}
