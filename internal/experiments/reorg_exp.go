package experiments

import (
	"errors"
	"fmt"
	"time"

	"mmfs/internal/alloc"
	"mmfs/internal/core"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/strand"
)

// Reorg regenerates §6.2's reorganization scenario: after churn
// (recording and deleting many small-block strands) the free space is
// fragmented into block-sized holes; a new strand with larger blocks
// cannot find policy-compliant placements and is cut short. Compacting
// the surviving strands consolidates the holes, after which the same
// recording succeeds in full.
func Reorg() Result {
	res := Result{
		ID:      "EXP-REORG",
		Title:   "Storage reorganization (§6.2): recording on a fragmented disk, before and after compaction",
		Headers: []string{"phase", "occupancy", "largest free run (sectors)", "blocks placed", "wanted"},
	}
	// A small disk makes fragmentation cheap to create.
	g := disk.Geometry{
		Cylinders:       160,
		Surfaces:        2,
		SectorsPerTrack: 32,
		SectorSize:      512,
		RPM:             3600,
		MinSeek:         2 * time.Millisecond,
		MaxSeek:         25 * time.Millisecond,
		Heads:           1,
	}
	fs, err := core.Format(core.Options{Geometry: g, TargetCylinders: 16})
	if err != nil {
		panic(err)
	}

	// Churn: fill ~90% with small-block strands, then delete every
	// other one, leaving small scattered holes.
	writeStrand := func(q, frameB, blocks int, seed int64) *strand.Strand {
		w, err := strand.NewWriter(fs.Disk(), fs.Allocator(), strand.WriterConfig{
			ID: fs.Strands().NewID(), Medium: layout.Video, Rate: 30,
			UnitBytes: frameB, Granularity: q,
			Constraint:    fs.Constraint(),
			StartCylinder: int(seed*29) % g.Cylinders,
		})
		if err != nil {
			panic(err)
		}
		src := media.NewVideoSource(blocks*q, frameB, 30, seed)
		for {
			u, ok := src.Next()
			if !ok {
				break
			}
			if _, err := w.Append(u); err != nil {
				if errors.Is(err, alloc.ErrNoSpace) {
					break
				}
				panic(err)
			}
		}
		s, err := w.Close()
		if err != nil {
			panic(err)
		}
		fs.Strands().Put(s)
		return s
	}
	var churn []*strand.Strand
	for i := 0; fs.Occupancy() < 0.88 && i < 500; i++ {
		churn = append(churn, writeStrand(3, 4500, 18, int64(100+i)))
	}
	for i := 0; i < len(churn); i += 2 {
		if err := fs.Strands().Remove(churn[i].ID()); err != nil {
			panic(err)
		}
	}

	// Attempt: a strand with 4× larger blocks, needing longer runs
	// than the churn holes provide.
	const wantBlocks = 20
	attempt := func(seed int64) (*strand.Strand, int) {
		s := writeStrand(12, 4500, wantBlocks, seed)
		return s, s.NumBlocks()
	}
	occBefore, freeBefore := fs.Occupancy(), largestFree(fs)
	before, placedBefore := attempt(9000)
	res.AddRow("fragmented", fmt.Sprintf("%.0f%%", occBefore*100),
		fmt.Sprint(freeBefore), fmt.Sprint(placedBefore), fmt.Sprint(wantBlocks))
	// Remove the partial attempt before compaction.
	if err := fs.Strands().Remove(before.ID()); err != nil {
		panic(err)
	}

	rep, err := fs.Compact()
	if err != nil {
		panic(err)
	}
	occAfter, freeAfter := fs.Occupancy(), largestFree(fs)
	_, placedAfter := attempt(9001)
	res.AddRow("after Compact()", fmt.Sprintf("%.0f%%", occAfter*100),
		fmt.Sprint(freeAfter), fmt.Sprint(placedAfter), fmt.Sprint(wantBlocks))

	res.Note("paper §6.2: \"when it becomes impossible to place new media strands … the storage of existing media strands on the disk may have to be reorganized\"")
	res.Note("compaction relocated %d strand(s) (%d sectors), growing the largest free run %d → %d sectors",
		rep.Moved, rep.SectorsMoved, rep.LargestFreeRunBefore, rep.LargestFreeRunAfter)
	return res
}

// largestFree mirrors core's fragmentation metric for reporting.
func largestFree(fs *core.FS) int {
	best, run := 0, 0
	a := fs.Allocator()
	for i := 0; i < a.TotalSectors(); i++ {
		if a.InUse(i) {
			run = 0
			continue
		}
		run++
		if run > best {
			best = run
		}
	}
	return best
}
