package experiments

import (
	"errors"
	"fmt"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// rebuildStripeCyl is EXP-REBUILD's striping unit. Smaller than
// EXP-STRIPE's so the mirrored (half-capacity) array still offers
// enough stripe-group slots per preferred spindle for a full n_max
// admission probe.
const rebuildStripeCyl = 60

// mirrorRig is a p-spindle mirrored array (p/2 pairs) with the
// allocator and strand store in its halved logical address space;
// spindle faultSpindle is fault-wrapped when the scenario is active.
type mirrorRig struct {
	raw []*disk.Disk
	arr *disk.Array
	a   *alloc.Allocator
	st  *strand.Store
	dev continuity.Device
	p   int
}

func newMirrorRig(p, faultSpindle int, sc fault.Scenario) *mirrorRig {
	g := disk.DefaultGeometry()
	devs := make([]disk.Device, p)
	raw := make([]*disk.Disk, p)
	for i := range devs {
		raw[i] = disk.MustNew(g)
		if i == faultSpindle && sc.Active() {
			devs[i] = fault.New(raw[i], sc)
		} else {
			devs[i] = raw[i]
		}
	}
	arr := disk.MustNewMirroredArray(devs, rebuildStripeCyl)
	a, err := alloc.New(arr.Geometry(), 64)
	if err != nil {
		panic(err)
	}
	lg := arr.Geometry()
	return &mirrorRig{
		raw: raw, arr: arr, a: a,
		st: strand.NewStore(arr, a),
		dev: continuity.Device{
			TransferRate: lg.TransferRateBits(),
			MaxAccess:    continuity.Seconds(lg.MaxAccessTime()),
			MinAccess:    continuity.Seconds(lg.MinAccessTime()),
		},
		p: p,
	}
}

func (r *mirrorRig) scattering() float64 {
	return continuity.Seconds(r.arr.Geometry().AccessTime(32))
}

// recordPreferring writes a video strand whose blocks the balanced
// steering reads from exactly the given spindle: stripe-group slot
// (spindle%2 + 2*within) of mirror pair spindle/2, slot parity picking
// the preferred twin. The data itself is duplicated on both twins.
func (r *mirrorRig) recordPreferring(spindle, within, frames int, seed int64) *strand.Strand {
	mg := r.arr.MirrorGroups()
	pair, slot := spindle/2, spindle%2+2*within
	group := slot*mg + pair
	w, err := strand.NewWriter(r.arr, r.a, strand.WriterConfig{
		ID:            r.st.NewID(),
		Medium:        layout.Video,
		Rate:          30,
		UnitBytes:     frameBytes,
		Granularity:   3,
		Constraint:    alloc.Constraint{MinCylinders: 1, MaxCylinders: 32},
		StartCylinder: group * rebuildStripeCyl,
	})
	if err != nil {
		panic(err)
	}
	src := media.NewVideoSource(frames, frameBytes, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			panic(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		panic(err)
	}
	r.st.Put(s)
	for i := 0; i < s.NumBlocks(); i++ {
		e, berr := s.Block(i)
		if berr != nil {
			panic(berr)
		}
		if sp, one := r.arr.SpindleRange(int(e.Sector), int(e.SectorCount)); !one || sp != spindle {
			panic(fmt.Sprintf("experiments: EXP-REBUILD block %d on spindle %d, want %d", i, sp, spindle))
		}
	}
	return s
}

func (r *mirrorRig) plan(s *strand.Strand, class continuity.Class) msm.PlayPlan {
	plan, err := msm.PlanStrandPlay(r.arr, s, msm.PlanOptions{
		ReadAhead: 1, Buffers: 64, Scattering: r.scattering(), Class: class,
	})
	if err != nil {
		panic(err)
	}
	return plan
}

// probeAdmission counts how many of the probe strands a fresh
// admission-only manager accepts against the array's current steering
// (a NaiveJump gate runs no service rounds, so the fault clock and the
// virtual clock stay untouched).
func (r *mirrorRig) probeAdmission(adm continuity.Admission, probes []*strand.Strand) int {
	gate := msm.New(r.arr, adm)
	gate.SetPolicy(msm.NaiveJump)
	admitted := 0
	for _, s := range probes {
		if _, _, err := gate.AdmitPlay(r.plan(s, continuity.Standard)); err != nil {
			if !errors.Is(err, msm.ErrAdmissionRejected) {
				panic(err)
			}
			continue
		}
		admitted++
	}
	return admitted
}

// Rebuild drives EXP-REBUILD: a 4-spindle mirrored array survives a
// whole-spindle loss. A scripted die=<round> kills one twin while all
// four spindles carry streams (premium everywhere except the victim);
// the surviving twin absorbs the dead spindle's stream after a bounded
// degraded burst, no stream is aborted, and the per-spindle Eq. 18
// admission shrinks to the surviving capacity. An online rebuild onto
// a replacement device then restores full redundancy and the full
// p·n_max admission bound.
func Rebuild() Result {
	res := Result{
		ID:      "EXP-REBUILD",
		Title:   "Mirrored array: whole-spindle loss, degraded service, online rebuild",
		Headers: []string{"phase", "n_max/sp", "streams", "admitted", "completed", "prem viol", "degraded", "stops", "chunks"},
	}

	const p, victim, dieRound = 4, 1, 6
	r := newMirrorRig(p, victim, fault.Scenario{Seed: 42 + seedBase, DieRound: dieRound})
	adm := continuity.AdmissionFor(r.dev)
	tmpl := continuity.Request{
		Name: "video", Granularity: 3, UnitBits: frameBytes * 8, Rate: 30,
		Scattering: r.scattering(),
	}
	nmax := adm.NMax(tmpl)
	slots := r.arr.Geometry().Cylinders / rebuildStripeCyl / p // groups per preferred spindle
	if nmax > slots {
		panic(fmt.Sprintf("experiments: EXP-REBUILD needs %d stripe-group slots per spindle, have %d", nmax, slots))
	}

	// One 5 s probe strand per (spindle, slot): the admission
	// population that exactly saturates every spindle's Eq. 17 bound.
	probes := make([]*strand.Strand, 0, p*nmax)
	for within := 0; within < nmax; within++ {
		for sp := 0; sp < p; sp++ {
			probes = append(probes, r.recordPreferring(sp, within, 150, seedBase+int64(9600+100*within+sp)))
		}
	}

	// Phase 1 — healthy: all p·n_max probes admitted, one more on a
	// saturated spindle rejected.
	healthy := r.probeAdmission(adm, probes)
	if healthy != p*nmax {
		panic(fmt.Sprintf("experiments: EXP-REBUILD healthy array admitted %d, want p·n_max = %d", healthy, p*nmax))
	}
	over := r.probeAdmission(adm, append(append([]*strand.Strand{}, probes...), probes[0]))
	if over != p*nmax {
		panic(fmt.Sprintf("experiments: EXP-REBUILD admitted %d past the p·n_max bound", over-p*nmax))
	}
	res.AddRow("healthy admission", fmt.Sprint(nmax), fmt.Sprint(p*nmax+1), fmt.Sprint(healthy), "-", "-", "-", "-", "-")

	// Phase 2 — die=6 service: one stream per spindle, premium
	// everywhere except the victim. The victim twin dies mid-run; its
	// stream must be re-steered to the survivor after a bounded
	// degraded burst, with zero premium violations and zero aborts.
	mgr := msm.New(r.arr, adm)
	ids := make([]msm.RequestID, p)
	for sp := 0; sp < p; sp++ {
		class := continuity.Premium
		if sp == victim {
			class = continuity.Standard
		}
		var err error
		if ids[sp], _, err = mgr.AdmitPlay(r.plan(probes[sp], class)); err != nil {
			panic(err)
		}
	}
	mgr.RunUntilDone()
	completed, premViol, victimDeg := 0, 0, 0
	for sp, id := range ids {
		pr, err := mgr.Progress(id)
		if err != nil {
			panic(err)
		}
		if pr.Done && pr.BlocksServed == pr.BlocksTotal {
			completed++
		}
		if sp == victim {
			victimDeg = pr.DegradedBlocks
		} else {
			premViol += pr.Violations
		}
	}
	st := mgr.Stats()
	if completed != p || premViol != 0 || st.FaultStops != 0 {
		panic(fmt.Sprintf("experiments: EXP-REBUILD degraded service: completed=%d/%d premViol=%d stops=%d",
			completed, p, premViol, st.FaultStops))
	}
	if victimDeg == 0 {
		panic("experiments: EXP-REBUILD: the die scenario never fired")
	}
	if s := r.arr.SpindleState(victim); s == disk.Healthy {
		panic(fmt.Sprintf("experiments: EXP-REBUILD victim still %v after dying", s))
	}
	res.AddRow(fmt.Sprintf("die=%d service", dieRound), fmt.Sprint(nmax), fmt.Sprint(p),
		"-", fmt.Sprint(completed), fmt.Sprint(premViol), fmt.Sprint(victimDeg), fmt.Sprint(st.FaultStops), "-")

	// Phase 3 — degraded admission: the operator declares the suspect
	// drive dead (the health machine may converge at Suspect when the
	// steering routes reads away before enough strikes accumulate —
	// the same convention Manager.Rebuild accepts). Every slot of the
	// pair then charges the surviving twin's lane, so the pair admits
	// n_max instead of 2·n_max and the array bound drops to
	// (p-1)·n_max.
	r.arr.SetSpindleState(victim, disk.Dead)
	r.arr.RefreshSteering()
	degraded := r.probeAdmission(adm, probes)
	if degraded != (p-1)*nmax {
		panic(fmt.Sprintf("experiments: EXP-REBUILD degraded array admitted %d, want (p-1)·n_max = %d", degraded, (p-1)*nmax))
	}
	res.AddRow("degraded admission", fmt.Sprint(nmax), fmt.Sprint(p*nmax), fmt.Sprint(degraded), "-", "-", "-", "-", "-")

	// Phase 4 — online rebuild: replace the dead device, copy the
	// twin's cylinders in otherwise idle rounds, return to Healthy.
	if err := mgr.Rebuild(victim); err != nil {
		panic(err)
	}
	mgr.RunUntilDone()
	if mgr.RepairActive() {
		done, total := mgr.RepairProgress()
		panic(fmt.Sprintf("experiments: EXP-REBUILD rebuild stalled at %d/%d", done, total))
	}
	if got := r.arr.SpindleState(victim); got != disk.Healthy {
		panic(fmt.Sprintf("experiments: EXP-REBUILD rebuilt spindle state %v", got))
	}
	chunks := mgr.Stats().RebuildBlocks
	if chunks == 0 {
		panic("experiments: EXP-REBUILD rebuild copied no chunks")
	}
	res.AddRow("online rebuild", fmt.Sprint(nmax), "-", "-", "-", "-", "-", "-", fmt.Sprint(chunks))

	// Phase 5 — rebuilt: steering rebalances, the replacement serves
	// the victim stream's replay cleanly, and admission returns to the
	// full p·n_max bound.
	r.arr.RefreshSteering()
	id, _, err := mgr.AdmitPlay(r.plan(probes[victim], continuity.Premium))
	if err != nil {
		panic(err)
	}
	mgr.RunUntilDone()
	pr, err := mgr.Progress(id)
	if err != nil {
		panic(err)
	}
	if !pr.Done || pr.Violations != 0 || pr.DegradedBlocks != 0 {
		panic(fmt.Sprintf("experiments: EXP-REBUILD post-rebuild replay: done=%v viol=%d degraded=%d",
			pr.Done, pr.Violations, pr.DegradedBlocks))
	}
	rebuilt := r.probeAdmission(adm, probes)
	if rebuilt != p*nmax {
		panic(fmt.Sprintf("experiments: EXP-REBUILD rebuilt array admitted %d, want p·n_max = %d", rebuilt, p*nmax))
	}
	res.AddRow("rebuilt admission+replay", fmt.Sprint(nmax), fmt.Sprint(p*nmax), fmt.Sprint(rebuilt),
		"1", fmt.Sprint(pr.Violations), fmt.Sprint(pr.DegradedBlocks), "-", "-")

	res.Note("mirrored array of %d spindles in %d pairs, %d-cylinder stripe groups; capacity halves, every write is duplicated onto both twins", p, p/2, rebuildStripeCyl)
	res.Note("a scripted die=%d kills spindle %d mid-run: the health machine converges within a bounded burst (%d degraded blocks) and steering re-routes its streams to the twin — zero aborts, zero premium violations", dieRound, victim, victimDeg)
	res.Note("per-spindle Eq. 18 admission follows the steering: the dead twin's slots charge the survivor, shrinking the array bound from p·n_max=%d to (p-1)·n_max=%d, and the online rebuild (%d chunks in round slack) restores it", p*nmax, (p-1)*nmax, chunks)
	res.Note("extension beyond the paper: Rangan & Vin assume fail-stop storage; mirrored pairs + degraded steering + slack-charged rebuild keep their continuity guarantees across a whole-spindle loss")
	return res
}
