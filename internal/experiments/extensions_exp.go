package experiments

import (
	"fmt"

	"mmfs/internal/continuity"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// This file implements the paper's §6.2 future-work directions as
// measurable extensions: variable-rate compression (EXP-VBR) and
// seek-order-optimized request servicing (EXP-SCAN).

// VBR regenerates the §6.2 variable-rate compression analysis: storage
// gain over peak provisioning, the peak- versus average-based
// scattering bounds, and the buffering needed for average-provisioned
// playback to ride out intra-frame bursts.
func VBR() Result {
	res := Result{
		ID:      "EXP-VBR",
		Title:   "Variable-rate compression (§6.2): storage gain and provisioning profiles",
		Headers: []string{"metric", "peak provisioning", "average provisioning"},
	}
	const (
		frames = 600 // 20 s
		peakB  = 36000
		diffB  = 12000
		gop    = 10
		q      = 3
	)
	dev := stdDevice()
	prof := continuity.VBRProfile{
		Rate:         30,
		PeakUnitBits: peakB * 8,
		AvgUnitBits:  (peakB + (gop-1)*diffB) / gop * 8,
	}
	peakLds, avgLds, ok := continuity.VBRMaxScattering(continuity.Config{Arch: continuity.Pipelined}, q, prof, dev)
	if !ok {
		res.Note("device cannot sustain the VBR stream at all")
		return res
	}
	peakCell := "infeasible"
	if peakLds >= 0 {
		peakCell = ms(peakLds)
	}
	res.AddRow("max l_ds (ms)", peakCell, ms(avgLds))

	// Record the stream both ways and compare storage.
	r := newRig()
	vbrStrand := r.recordVBRStrand(frames, peakB, diffB, gop, q, 8800)
	cbr := r.recordStrandSized(frames, peakB, q, 8801)
	ss := r.fs.Disk().Geometry().SectorSize
	count := func(s *strand.Strand) int {
		total := 0
		for _, run := range s.MediaRuns() {
			total += run.Sectors
		}
		return total
	}
	vbrSectors, cbrSectors := count(vbrStrand), count(cbr)
	res.AddRow("sectors stored", fmt.Sprint(cbrSectors), fmt.Sprint(vbrSectors))
	res.AddRow("storage gain", "1.00×", fmt.Sprintf("%.2f×", float64(cbrSectors)/float64(vbrSectors)))
	_ = ss

	// Playback: strict (read-ahead 1) and burst-buffered.
	h := continuity.VBRBurstReadAhead(q, prof, dev, 1)
	strictViol, _ := r.playStrands([]*strand.Strand{vbrStrand}, 1, 2, 1)
	bufferedViol, _ := r.playStrands([]*strand.Strand{vbrStrand}, h+1, 2*(h+1), 1)
	res.AddRow("sim violations (read-ahead 1)", "-", fmt.Sprint(strictViol))
	res.AddRow(fmt.Sprintf("sim violations (read-ahead %d)", h+1), "-", fmt.Sprint(bufferedViol))
	res.Note("paper §6.2: variable-rate compression \"can result in varying but smaller sizes of video frames, thereby yielding better bounds for granularity and scattering\"")
	res.Note("average provisioning admits %.2f× more stored seconds per disk; intra-frame bursts are absorbed by %d block(s) of anti-jitter read-ahead", float64(cbrSectors)/float64(vbrSectors), h+1)
	return res
}

func (r *rig) recordVBRStrand(frames, peak, diff, gop, q int, seed int64) *strand.Strand {
	w, err := strand.NewWriter(r.fs.Disk(), r.fs.Allocator(), strand.WriterConfig{
		ID:          r.fs.Strands().NewID(),
		Medium:      layout.Video,
		Rate:        30,
		UnitBytes:   peak,
		Granularity: q,
		Variable:    true,
		Constraint:  r.fs.Constraint(),
	})
	if err != nil {
		panic(err)
	}
	src := media.NewVBRVideoSource(frames, peak, diff, gop, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			panic(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		panic(err)
	}
	r.fs.Strands().Put(s)
	return s
}

func (r *rig) recordStrandSized(frames, frameB, q int, seed int64) *strand.Strand {
	w, err := strand.NewWriter(r.fs.Disk(), r.fs.Allocator(), strand.WriterConfig{
		ID:            r.fs.Strands().NewID(),
		Medium:        layout.Video,
		Rate:          30,
		UnitBytes:     frameB,
		Granularity:   q,
		Constraint:    r.fs.Constraint(),
		StartCylinder: 600,
	})
	if err != nil {
		panic(err)
	}
	src := media.NewVideoSource(frames, frameB, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			panic(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		panic(err)
	}
	r.fs.Strands().Put(s)
	return s
}

// Scan regenerates §6.2's request-ordering direction: "servicing
// requests in the order that minimizes … the separations between
// blocks, thereby minimizing the overhead of switching between
// requests". With a C-SCAN service order inside each round, the
// realized round time drops and the same k carries more streams than
// arrival-order servicing.
func Scan() Result {
	res := Result{
		ID:      "EXP-SCAN",
		Title:   "Seek-ordered servicing (§6.2): arrival order vs C-SCAN within rounds",
		Headers: []string{"order", "streams", "min feasible k", "total seek @k (ms)", "switch seeks/round (ms)"},
	}
	dev := stdDevice()
	adm := continuity.AdmissionFor(dev)
	tmpl := stdRequest(3)
	n := adm.NMax(tmpl)
	reqs := make([]continuity.Request, n)
	for i := range reqs {
		reqs[i] = tmpl
	}
	kFull, _ := adm.KTransient(reqs)

	// One shared data set: strands spread across the disk, admitted
	// in an order that zig-zags the actuator (worst case for
	// arrival-order servicing).
	r := newRig()
	strands := make([]*strand.Strand, n)
	for i := range strands {
		_, strands[i] = r.recordVideoRope(20, int64(9100+i))
	}
	zigzag := make([]*strand.Strand, 0, n)
	for lo, hi := 0, n-1; lo <= hi; lo, hi = lo+1, hi-1 {
		zigzag = append(zigzag, strands[lo])
		if hi != lo {
			zigzag = append(zigzag, strands[hi])
		}
	}

	trial := func(order msm.ServiceOrder, admitOrder []*strand.Strand, k int) (viol int, seek, busy float64, rounds uint64) {
		mgr := r.fs.NewManager()
		r.fs.Disk().ResetStats()
		mgr.SetPolicy(msm.NaiveJump)
		mgr.SetServiceOrder(order)
		mgr.ForceK(k)
		var ids []msm.RequestID
		for _, s := range admitOrder {
			plan, err := msm.PlanStrandPlay(r.fs.Disk(), s, msm.PlanOptions{
				ReadAhead:  k,
				Buffers:    2 * k,
				Scattering: r.fs.TargetScattering(),
			})
			if err != nil {
				panic(err)
			}
			id, _, err := mgr.AdmitPlay(plan)
			if err != nil {
				panic(err)
			}
			ids = append(ids, id)
			mgr.ForceK(k)
		}
		mgr.RunUntilDone()
		for _, id := range ids {
			v, err := mgr.Violations(id)
			if err != nil {
				panic(err)
			}
			viol += len(v)
		}
		dst := r.fs.Disk().Stats()
		return viol, float64(dst.SeekTime.Milliseconds()), float64(dst.BusyTime().Milliseconds()), mgr.Stats().Rounds
	}

	arms := []struct {
		name  string
		order msm.ServiceOrder
		admit []*strand.Strand
	}{
		{"arrival (zig-zag)", msm.ArrivalOrder, zigzag},
		{"arrival (cylinder-sorted)", msm.ArrivalOrder, strands},
		{"C-SCAN per round", msm.ScanOrder, zigzag},
	}
	for _, arm := range arms {
		kMin := -1
		var seekAtK, switchPerRound float64
		for k := 1; k <= kFull+4; k++ {
			viol, seek, _, rounds := trial(arm.order, arm.admit, k)
			if viol == 0 {
				kMin = k
				seekAtK = seek
				if rounds > 0 {
					switchPerRound = seek / float64(rounds)
				}
				break
			}
		}
		res.AddRow(arm.name, fmt.Sprint(n), fmt.Sprint(kMin),
			fmt.Sprintf("%.1f", seekAtK), fmt.Sprintf("%.2f", switchPerRound))
	}
	res.Note("paper §6.2: round-robin in arrival order forces the admission formulas to assume the maximum seek per switch, making the n_max estimate \"pessimistic\"; servicing \"in the order that minimizes the separations between blocks\" shrinks the realized switch cost")
	res.Note("the static cylinder-sorted order gets the seek savings without jitter; per-round C-SCAN minimizes seeks further but lets a stream's service slot drift by almost a full round between sweeps, demanding deeper buffering (the tension later resolved by grouped-sweeping schedulers)")
	return res
}
