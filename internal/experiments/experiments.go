// Package experiments regenerates every quantitative artifact of
// Rangan & Vin (SOSP '91): Figure 4's k-versus-n curve, the continuity
// feasibility frontiers of Eqs. 1–6, the n_max bound of Eq. 17, the
// transient-safe admission transition of Eq. 18, the editing copy
// bounds of Eqs. 19–20, the read-ahead and fast-forward analyses of
// §3.3.2, silence elimination (§4), and the HDTV motivating arithmetic
// of §3. Each experiment pairs the paper's closed-form prediction with
// a measurement on the simulated file system, and renders a
// paper-shaped table.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mmfs/internal/continuity"
	"mmfs/internal/core"
	"mmfs/internal/disk"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
	"mmfs/internal/strand"
)

// seedBase offsets every seeded chaos workload (EXP-FT, EXP-STRIPE,
// EXP-QOS); cmd/mmexperiments -seed sets it so the nightly chaos loop
// replays the same experiments under distinct deterministic storms.
var seedBase int64

// SetSeedBase installs the workload seed offset (0 restores the
// default seeds).
func SetSeedBase(s int64) { seedBase = s }

// Result is one experiment's rendered outcome.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "EXP-F4").
	ID string
	// Title describes what is reproduced.
	Title string
	// Headers are the table column names.
	Headers []string
	// Rows are the table cells.
	Rows [][]string
	// Notes carry the comparison against the paper's claim.
	Notes []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a note line.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render pretty-prints the result as an aligned text table.
func Render(w io.Writer, r Result) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// All runs every experiment in DESIGN.md order.
func All() []Result {
	return []Result{
		F4(),
		E1Sequential(),
		E2Pipelined(),
		E3Concurrent(),
		E46MixedMedia(),
		NMax(),
		Transition(),
		EditCopy(),
		ReadAhead(),
		Silence(),
		HDTV(),
		FastForward(),
		VBR(),
		Scan(),
		Reorg(),
		IntervalCache(),
		FaultTolerance(),
		Stripe(),
		QoS(),
		Rebuild(),
	}
}

// ByID looks an experiment runner up by its short name (the -exp flag
// of cmd/mmexperiments).
func ByID(id string) (func() Result, bool) {
	m := map[string]func() Result{
		"f4":     F4,
		"e1":     E1Sequential,
		"e2":     E2Pipelined,
		"e3":     E3Concurrent,
		"e46":    E46MixedMedia,
		"nmax":   NMax,
		"trans":  Transition,
		"edit":   EditCopy,
		"ra":     ReadAhead,
		"sil":    Silence,
		"hdtv":   HDTV,
		"ff":     FastForward,
		"vbr":    VBR,
		"scan":   Scan,
		"reorg":  Reorg,
		"ic":     IntervalCache,
		"ft":     FaultTolerance,
		"stripe":  Stripe,
		"qos":     QoS,
		"rebuild": Rebuild,
	}
	f, ok := m[strings.ToLower(id)]
	return f, ok
}

// ntsc is the experiment's standard video medium.
func ntsc() continuity.Media { return continuity.NTSCVideo() }

// stdDevice is the continuity view of the default geometry.
func stdDevice() continuity.Device {
	g := disk.DefaultGeometry()
	return continuity.Device{
		TransferRate: g.TransferRateBits(),
		MaxAccess:    continuity.Seconds(g.MaxAccessTime()),
		MinAccess:    continuity.Seconds(g.MinAccessTime()),
	}
}

// stdRequest is the admission-control request template used across
// admission experiments: NTSC video at granularity q under the
// default placement policy.
func stdRequest(q int) continuity.Request {
	g := disk.DefaultGeometry()
	m := ntsc()
	return continuity.Request{
		Name:        "video",
		Granularity: q,
		UnitBits:    m.UnitBits,
		Rate:        m.Rate,
		Scattering:  continuity.Seconds(g.AccessTime(32)),
	}
}

// rig is the standard experimental file system.
type rig struct {
	fs *core.FS
}

func newRig() *rig {
	fs, err := core.Format(core.Options{})
	if err != nil {
		panic(err)
	}
	return &rig{fs: fs}
}

// frameBytes is the experiment video frame size (18 KB ≈ 8:1
// compressed NTSC).
const frameBytes = 18000

// recordVideoRope records a video-only clip of the given length and
// returns the rope and its strand.
func (r *rig) recordVideoRope(seconds int, seed int64) (*rope.Rope, *strand.Strand) {
	frames := 30 * seconds
	sess, err := r.fs.Record(core.RecordSpec{
		Creator: "exp",
		Video:   media.NewVideoSource(frames, frameBytes, 30, seed),
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: record: %v", err))
	}
	r.fs.Manager().RunUntilDone()
	rp, err := sess.Finish()
	if err != nil {
		panic(err)
	}
	s := r.fs.Strands().MustGet(rp.Intervals[0].Video.Strand)
	return rp, s
}

// playStrands admits one PLAY per strand on a fresh manager with the
// given read-ahead and blocks-per-round override (0 = admission's own
// k), runs to completion, and returns total violations.
func (r *rig) playStrands(strands []*strand.Strand, readAhead, buffers, forceK int) (violations int, mgr *msm.Manager) {
	mgr = r.fs.NewManager()
	if forceK > 0 {
		// Forced-k trials bypass the stepwise transition so every
		// stream is admitted at virtual time zero under the k being
		// probed.
		mgr.SetPolicy(msm.NaiveJump)
		mgr.ForceK(forceK)
	}
	var ids []msm.RequestID
	for _, s := range strands {
		plan, err := msm.PlanStrandPlay(r.fs.Disk(), s, msm.PlanOptions{
			ReadAhead:  readAhead,
			Buffers:    buffers,
			Scattering: r.fs.TargetScattering(),
		})
		if err != nil {
			panic(err)
		}
		id, _, err := mgr.AdmitPlay(plan)
		if err != nil {
			return -1, mgr // admission rejected
		}
		ids = append(ids, id)
		if forceK > 0 {
			mgr.ForceK(forceK)
		}
	}
	mgr.RunUntilDone()
	total := 0
	for _, id := range ids {
		v, err := mgr.Violations(id)
		if err != nil {
			panic(err)
		}
		total += len(v)
	}
	return total, mgr
}

// ms formats seconds as milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.2f", sec*1000) }

// durMS formats a duration as milliseconds.
func durMS(d time.Duration) string { return fmt.Sprintf("%.2f", d.Seconds()*1000) }

func yesno(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
