package experiments

import (
	"fmt"
	"math/rand"

	"mmfs/internal/continuity"
	"mmfs/internal/fault"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// qosArrival is one scheduled PLAY request of the EXP-QOS workload:
// a pre-recorded strand arriving with a QoS class. The schedule is
// built once and replayed against both the QoS manager and the no-QoS
// baseline so the comparison is apples to apples.
type qosArrival struct {
	s     *strand.Strand
	class continuity.Class
	long  bool // 10 s strand (300 frames) vs 5 s peak short
}

// qosRig wraps the striped rig with per-spindle recording slots so
// EXP-QOS can place an arbitrary arrival mix without strands colliding
// or straddling stripe groups.
type qosRig struct {
	*stripeRig
	slot []int // next free recording slot per spindle
	rng  *rand.Rand
	seq  int64
}

func newQoSRig(p int) *qosRig {
	return &qosRig{
		stripeRig: newStripeRig(p, -1, fault.Scenario{}),
		slot:      make([]int, p),
		rng:       rand.New(rand.NewSource(9300 + seedBase)),
	}
}

// record writes one strand on the spindle at its next free slot. Each
// strand gets its own 120-cylinder stripe group (the placement policy
// scatters blocks across the group), so placements never leak onto a
// neighbouring spindle; a spindle hosts at most n_max+2 ≤ 10 strands.
func (r *qosRig) record(spindle, frames int) *strand.Strand {
	sl := r.slot[spindle]
	r.slot[spindle]++
	if sl >= r.arr.Geometry().Cylinders/(r.p*stripeCyl) {
		panic(fmt.Sprintf("experiments: EXP-QOS spindle %d out of recording slots", spindle))
	}
	localCyl := sl * stripeCyl
	r.seq++
	return r.recordOn(spindle, localCyl, frames, 9300+seedBase+r.seq)
}

// planClassed compiles the arrival's play plan for the given manager
// run (plans hold per-manager state and cannot be reused). Read-ahead
// and buffering match the forced k, the EXP-FT saturation idiom.
func (r *qosRig) planClassed(a qosArrival, k int) msm.PlayPlan {
	plan, err := msm.PlanStrandPlay(r.arr, a.s, msm.PlanOptions{
		ReadAhead: k, Buffers: 2 * k, Scattering: r.scattering(), Class: a.class,
	})
	if err != nil {
		panic(err)
	}
	return plan
}

// qosPhaseA builds the off-peak population: nA long streams per
// spindle in a premium/standard/best-effort mix, all of which admit at
// full rate (the set is below n_max everywhere).
func (r *qosRig) qosPhaseA(nA, longFrames int) []qosArrival {
	mix := []continuity.Class{
		continuity.Premium, continuity.Standard, continuity.BestEffort,
		continuity.Standard, continuity.BestEffort,
	}
	var out []qosArrival
	i := 0
	for sp := 0; sp < r.p; sp++ {
		for j := 0; j < nA; j++ {
			out = append(out, qosArrival{s: r.record(sp, longFrames), class: mix[i%len(mix)], long: true})
			i++
		}
	}
	return out
}

// qosPeak builds one spindle's peak burst: shorts filling the spindle
// to n_max (alternating best-effort/standard in a seeded order), then
// a premium short that arrives with the spindle full — under QoS it
// must shed best-effort streams to get in — and finally a long
// best-effort probe that can only be admitted degraded. The probe is
// the recovery witness: it outlives the peak and must be promoted back
// to full rate once the shorts finish.
func (r *qosRig) qosPeak(spindle, fill, longFrames, shortFrames int) []qosArrival {
	classes := make([]continuity.Class, fill)
	for i := range classes {
		classes[i] = continuity.BestEffort
		if i%2 == 1 {
			classes[i] = continuity.Standard
		}
	}
	r.rng.Shuffle(len(classes), func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })
	var out []qosArrival
	for _, c := range classes {
		out = append(out, qosArrival{s: r.record(spindle, shortFrames), class: c})
	}
	out = append(out, qosArrival{s: r.record(spindle, shortFrames), class: continuity.Premium})
	out = append(out, qosArrival{s: r.record(spindle, longFrames), class: continuity.BestEffort, long: true})
	return out
}

// qosRun replays the arrival schedule (phase A, then per-spindle peak
// bursts) against a fresh manager and reports per-phase admission
// outcomes plus the final per-stream progress of everything admitted.
type qosRunStats struct {
	admittedA   int
	admittedB   int
	rejectedB   int
	degradedAtPeak int // streams at stride > 1 right after the last peak arrival
	shedAtPeak  int    // blocks already skipped at that instant
	recovered   int    // degraded at some point, finished at full rate
	finishedShed int   // finished still degraded
	premLate    int    // CauseLate violations on premium streams
	premShed    int    // load-shed events on premium streams (must be 0)
	completed   int
	stats       msm.Stats
}

func (r *qosRig) qosRun(mgr *msm.Manager, phaseA []qosArrival, peak [][]qosArrival, qos bool, k int) qosRunStats {
	var out qosRunStats
	type admitted struct {
		id    msm.RequestID
		class continuity.Class
	}
	var ids []admitted
	for _, a := range phaseA {
		id, dec, err := mgr.AdmitPlay(r.planClassed(a, k))
		if err != nil {
			panic(fmt.Sprintf("experiments: EXP-QOS off-peak admission rejected: %v", err))
		}
		mgr.ForceK(k)
		if dec.Stride > 1 {
			panic("experiments: EXP-QOS off-peak stream admitted degraded")
		}
		ids = append(ids, admitted{id, a.class})
		out.admittedA++
	}
	// A few service rounds between the phases: the off-peak set is
	// playing when the burst lands.
	for i := 0; i < 3; i++ {
		mgr.RunRound()
	}
	for _, burst := range peak {
		for _, a := range burst {
			id, _, err := mgr.AdmitPlay(r.planClassed(a, k))
			if err != nil {
				if qos && a.class == continuity.BestEffort && a.long {
					panic(fmt.Sprintf("experiments: EXP-QOS probe rejected under QoS: %v", err))
				}
				out.rejectedB++
				continue
			}
			mgr.ForceK(k)
			ids = append(ids, admitted{id, a.class})
			out.admittedB++
		}
		mgr.RunRound()
	}
	// Peak snapshot: the burst is fully landed, nothing has drained yet.
	for _, ad := range ids {
		p, err := mgr.Progress(ad.id)
		if err != nil {
			panic(err)
		}
		if p.Done {
			continue
		}
		if p.Stride > 1 {
			out.degradedAtPeak++
		}
		out.shedAtPeak += p.ShedBlocks
	}
	mgr.RunUntilDone()
	for _, ad := range ids {
		p, err := mgr.Progress(ad.id)
		if err != nil {
			panic(err)
		}
		if p.Done && p.BlocksServed == p.BlocksTotal {
			out.completed++
		}
		if p.ShedBlocks > 0 {
			if p.Stride == 1 {
				out.recovered++
			} else {
				out.finishedShed++
			}
		}
		v, err := mgr.Violations(ad.id)
		if err != nil {
			panic(err)
		}
		for _, viol := range v {
			if ad.class == continuity.Premium {
				switch viol.Cause {
				case msm.CauseLate:
					out.premLate++
				case msm.CauseLoadShed:
					out.premShed++
				}
			}
		}
	}
	out.stats = mgr.Stats()
	return out
}

// QoS drives EXP-QOS: a striped array under a diurnal load swing with
// three QoS classes. Off-peak everyone plays at full rate; at peak the
// offered load exceeds Eq. 18's feasible population on every spindle,
// and instead of rejecting the excess the storage manager load-sheds — best-effort
// streams are admitted (or demoted) to fast-forward-with-skip
// sub-sampling at 1× display time (§3.3.2's skip machinery), premium
// is never touched, and once the peak drains the per-round promotion
// pass hands the freed capacity back strictly by class then admission
// order. A no-QoS baseline replays the identical arrival schedule to
// show what binary admission would have rejected.
func QoS() Result {
	res := Result{
		ID:      "EXP-QOS",
		Title:   "QoS classes: load-driven graceful degradation instead of rejection",
		Headers: []string{"phase", "offered", "admitted", "rejected", "degraded", "recovered", "prem viol", "shed blk"},
	}

	const p = 4
	r := newQoSRig(p)
	adm := continuity.AdmissionFor(r.dev)
	tmpl := continuity.Request{
		Name: "video", Granularity: 3, UnitBits: frameBytes * 8, Rate: 30,
		Scattering: r.scattering(),
	}
	// The whole run is serviced at one fixed k, forced up front with
	// matching read-ahead — EXP-FT's saturation idiom, so no stepwise
	// transition rounds fire between arrivals and the peak burst is
	// genuinely simultaneous. The k is the smallest round size whose
	// transient-feasible population (Eq. 18 at that k) reaches 4
	// streams per spindle; running right at n_max would need the
	// near-singular k of the saturation boundary, whose rounds dwarf
	// any strand that fits one stripe group. Admissions, shedding, and
	// the per-round class pass all evaluate Eq. 18 at this k.
	feasibleN := func(k int) int {
		n := 0
		for {
			set := make([]continuity.Request, n+1)
			for i := range set {
				set[i] = tmpl
			}
			if !adm.FeasibleTransient(set, k) {
				return n
			}
			n++
		}
	}
	k := 2
	for feasibleN(k) < 4 {
		k++
	}
	nEff := feasibleN(k)
	nA := nEff / 2

	// Long strands last ~100/k rounds, peak shorts half that; both fit
	// a 120-cylinder stripe group (the placement policy scatters about
	// one cylinder per block).
	const longFrames, shortFrames = 300, 150

	phaseA := r.qosPhaseA(nA, longFrames)
	peak := make([][]qosArrival, p)
	for sp := 0; sp < p; sp++ {
		peak[sp] = r.qosPeak(sp, nEff-nA, longFrames, shortFrames)
	}
	offeredB := 0
	for _, b := range peak {
		offeredB += len(b)
	}

	// QoS run: load shedding enabled, stride bound 8.
	mgr := msm.New(r.arr, adm)
	mgr.SetPolicy(msm.NaiveJump)
	mgr.ForceK(k)
	mgr.SetQoS(msm.QoSPolicy{MaxStride: continuity.DefaultMaxStride})
	q := r.qosRun(mgr, phaseA, peak, true, k)
	if q.degradedAtPeak == 0 {
		panic("experiments: EXP-QOS no stream degraded at peak")
	}
	if q.recovered == 0 {
		panic("experiments: EXP-QOS no degraded stream promoted back to full rate")
	}
	if q.premLate != 0 || q.premShed != 0 {
		panic(fmt.Sprintf("experiments: EXP-QOS premium disturbed (late=%d shed=%d)", q.premLate, q.premShed))
	}

	// Baseline: identical schedule, binary accept/reject admission.
	bmgr := msm.New(r.arr, adm)
	bmgr.SetPolicy(msm.NaiveJump)
	bmgr.ForceK(k)
	base := r.qosRun(bmgr, phaseA, peak, false, k)
	if base.rejectedB == 0 {
		panic("experiments: EXP-QOS baseline rejected nothing — the peak is not a peak")
	}
	if q.admittedA+q.admittedB <= base.admittedA+base.admittedB {
		panic("experiments: EXP-QOS served no more streams than binary admission")
	}

	res.AddRow("off-peak", fmt.Sprint(len(phaseA)), fmt.Sprint(q.admittedA), "0", "0", "-", "-", "-")
	res.AddRow("peak", fmt.Sprint(offeredB), fmt.Sprint(q.admittedB), fmt.Sprint(q.rejectedB),
		fmt.Sprint(q.degradedAtPeak), "-", "-", fmt.Sprint(q.shedAtPeak))
	res.AddRow("drain", "-", "-", "-", fmt.Sprint(q.finishedShed), fmt.Sprint(q.recovered),
		fmt.Sprint(q.premLate), fmt.Sprint(q.stats.ShedBlocks))
	res.AddRow("no-QoS baseline", fmt.Sprint(len(phaseA)+offeredB),
		fmt.Sprint(base.admittedA+base.admittedB), fmt.Sprint(base.rejectedB), "-", "-", "-", "-")

	res.Note("p=%d spindles, k=%d blocks/round, feasible population n=%d per spindle (Eq. 18 at that k); off-peak carries %d streams/spindle, the peak burst lifts every spindle to n+2", p, k, nEff, nA)
	res.Note("classes: premium is never degraded or late; the peak premium arrival sheds best-effort streams (stride doubled, one CauseLoadShed violation each) to claim a full-rate slot")
	res.Note("the long best-effort probe on each spindle is admitted degraded (sub-sampled every stride-th block at 1× display time) and promoted back to full rate as the peak shorts finish: %d promotions, %d demotions over the run", q.stats.Promotions, q.stats.LoadDemotions)
	res.Note("\"recovered\" counts streams that were load-shed mid-flight yet finished at full rate; \"degraded\" in the drain row finished still sub-sampled")
	res.Note("the no-QoS baseline rejects %d of the same arrivals outright — graceful degradation trades transient quality of the lowest class for %d extra admitted streams", base.rejectedB, q.admittedA+q.admittedB-base.admittedA-base.admittedB)
	res.Note("extension beyond the paper: Rangan & Vin's admission (Eq. 18) is binary; the shedding reuses their §3.3.2 fast-forward analysis (disk cost ~1/stride) as a quality dial under overload")
	return res
}
