package experiments

import (
	"fmt"

	"mmfs/internal/continuity"
	"mmfs/internal/strand"
)

// F4 regenerates Figure 4: the variation of the number of blocks per
// round k with respect to the number of concurrent requests n. For
// each n up to Eq. 17's n_max it reports the steady-state k of Eq. 16,
// the transient-safe k of Eq. 18, and the smallest k at which a full
// simulation of n concurrent streams on the disk model plays with zero
// continuity violations.
func F4() Result {
	res := Result{
		ID:      "EXP-F4",
		Title:   "k vs n (Figure 4): blocks per round needed for n concurrent requests",
		Headers: []string{"n", "k steady (Eq.16)", "k transient (Eq.18)", "k simulated (min)", "round time (ms)", "violations@k"},
	}
	dev := stdDevice()
	adm := continuity.AdmissionFor(dev)
	const q = 3
	tmpl := stdRequest(q)
	nmax := adm.NMax(tmpl)

	r := newRig()
	strands := make([]*strand.Strand, nmax)
	for i := range strands {
		_, strands[i] = r.recordVideoRope(20, int64(1000+i))
	}

	for n := 1; n <= nmax; n++ {
		reqs := make([]continuity.Request, n)
		for i := range reqs {
			reqs[i] = tmpl
		}
		kSteady, okS := adm.KSteady(reqs)
		kTrans, okT := adm.KTransient(reqs)
		if !okS || !okT {
			res.AddRow(fmt.Sprint(n), "unserviceable", "unserviceable", "-", "-", "-")
			continue
		}
		// Search for the smallest simulated-feasible k.
		kSim := -1
		var lastViol int
		for k := 1; k <= kTrans+4; k++ {
			viol, _ := r.playStrands(strands[:n], k, 2*k, k)
			if viol == 0 {
				kSim = k
				lastViol = 0
				break
			}
			lastViol = viol
		}
		rt := adm.RoundTime(reqs, kTrans)
		res.AddRow(
			fmt.Sprint(n),
			fmt.Sprint(kSteady),
			fmt.Sprint(kTrans),
			fmt.Sprint(kSim),
			ms(rt),
			fmt.Sprint(lastViol),
		)
	}
	alpha := adm.Alpha([]continuity.Request{tmpl})
	beta := adm.Beta([]continuity.Request{tmpl})
	gamma := adm.Gamma([]continuity.Request{tmpl})
	res.Note("α=%.2fms β=%.2fms γ=%.2fms → n_max=⌈γ/β⌉−1=%d (Eq. 17)", alpha*1000, beta*1000, gamma*1000, nmax)
	res.Note("paper: k grows slowly for small n and rises steeply near n_max (Figure 4's hyperbolic shape)")
	res.Note("the round-time column is also the startup delay of a newly admitted request (\"larger the value of k, larger is the startup time\"), which is why the minimum k is desirable")
	res.Note("simulated k ≤ analytic k: the formulas assume the worst-case seek on every request switch (§6.2 calls the estimates pessimistic)")
	return res
}
