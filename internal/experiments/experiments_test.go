package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"mmfs/internal/continuity"
	"mmfs/internal/msm"
)

// cell parses a table cell as an int, tolerating decorations.
func cellInt(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("cell %q not an int", s)
	}
	return n
}

func TestRenderProducesTable(t *testing.T) {
	r := Result{ID: "X", Title: "t", Headers: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Note("n %d", 5)
	var buf bytes.Buffer
	Render(&buf, r)
	out := buf.String()
	for _, want := range []string{"== X: t ==", "a", "bb", "1", "2", "note: n 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"f4", "e1", "e2", "e3", "e46", "nmax", "trans", "edit", "ra", "sil", "hdtv", "ff", "vbr", "scan", "reorg", "ic", "ft", "stripe", "qos", "rebuild"} {
		if _, ok := ByID(id); !ok {
			t.Fatalf("experiment %q unknown", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID resolved")
	}
}

func TestF4ShapeMatchesFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation sweep")
	}
	res := F4()
	if len(res.Rows) < 3 {
		t.Fatalf("only %d rows", len(res.Rows))
	}
	// k columns are non-decreasing in n and rise toward n_max.
	prevSteady, prevSim := 0, 0
	for _, row := range res.Rows {
		ks := cellInt(t, row[1])
		sim := cellInt(t, row[3])
		if ks < prevSteady {
			t.Fatalf("steady k decreased: %v", res.Rows)
		}
		if sim < prevSim {
			t.Fatalf("simulated k decreased: %v", res.Rows)
		}
		if sim > cellInt(t, row[2]) {
			t.Fatalf("simulated k exceeds the transient bound: %v", row)
		}
		if viol := cellInt(t, row[5]); viol != 0 {
			t.Fatalf("violations at chosen k: %v", row)
		}
		prevSteady, prevSim = ks, sim
	}
	last := res.Rows[len(res.Rows)-1]
	if cellInt(t, last[1]) <= cellInt(t, res.Rows[0][1]) {
		t.Fatal("no k growth toward n_max; Figure 4's shape lost")
	}
}

func TestE1E2FrontiersValidated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	for _, res := range []Result{E1Sequential(), E2Pipelined()} {
		for _, row := range res.Rows {
			if cellInt(t, row[len(row)-2]) != 0 {
				t.Fatalf("%s: violations at the bound: %v", res.ID, row)
			}
		}
	}
	// The q=1 rows of both experiments must show violations past the
	// bound (where a past-the-bound distance exists).
	e1 := E1Sequential()
	if cellInt(t, e1.Rows[0][len(e1.Rows[0])-1]) == 0 {
		t.Fatal("E1: no violations past the bound at q=1")
	}
	e2 := E2Pipelined()
	if cellInt(t, e2.Rows[0][len(e2.Rows[0])-1]) == 0 {
		t.Fatal("E2: no violations past the bound at q=1")
	}
}

func TestTransitionContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	res := Transition()
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	stepwise := cellInt(t, res.Rows[0][4])
	naive := cellInt(t, res.Rows[1][4])
	if stepwise != 0 {
		t.Fatalf("stepwise transition violated %d times", stepwise)
	}
	if naive == 0 {
		t.Fatal("naive jump shows no transient violations; the experiment lost its contrast")
	}
}

func TestEditCopyMatchesPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	res := EditCopy()
	for _, row := range res.Rows {
		copied := cellInt(t, row[3])
		pred := cellInt(t, row[4])
		worst := cellInt(t, row[5])
		if copied > worst {
			t.Fatalf("copied %d beyond worst case %d: %v", copied, worst, row)
		}
		// On a lightly contended disk the measured count equals the
		// even-redistribution prediction; dense fills may exceed it
		// but never the worst case.
		if strings.HasPrefix(row[0], "0%") && copied != pred {
			t.Fatalf("sparse-disk copies %d, predicted %d", copied, pred)
		}
		if viol := cellInt(t, row[6]); viol != 0 {
			t.Fatalf("post-edit playback violated: %v", row)
		}
	}
}

func TestSilenceSavingsTrackFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res := Silence()
	prevSaved := -1
	for _, row := range res.Rows {
		saved := cellInt(t, strings.TrimSuffix(row[5], "%"))
		if saved < prevSaved {
			t.Fatalf("savings not monotone: %v", res.Rows)
		}
		if viol := cellInt(t, row[6]); viol != 0 {
			t.Fatalf("silence playback violated: %v", row)
		}
		prevSaved = saved
	}
	last := res.Rows[len(res.Rows)-1]
	if saved := cellInt(t, strings.TrimSuffix(last[5], "%")); saved < 50 {
		t.Fatalf("80%% silence saved only %d%%", saved)
	}
}

func TestHDTVArithmetic(t *testing.T) {
	res := HDTV()
	// Paper's 0.32 Gbit/s figure and verdicts.
	if !strings.HasPrefix(res.Rows[0][2], "0.3") {
		t.Fatalf("random-allocation rate %q, want ≈ 0.33", res.Rows[0][2])
	}
	if res.Rows[0][3] != "no" || res.Rows[2][3] != "yes" {
		t.Fatalf("verdicts %v", res.Rows)
	}
}

func TestFastForwardCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res := FastForward()
	foundCross := false
	for _, row := range res.Rows {
		if row[1] == "no" && row[2] == "no" {
			// Analytically infeasible no-skip row: the simulation
			// must also have violated (or been rejected, -1).
			if cellInt(t, row[4]) == 0 {
				t.Fatalf("infeasible FF played clean: %v", row)
			}
			foundCross = true
		}
		if row[2] == "yes" {
			if cellInt(t, row[4]) != 0 {
				t.Fatalf("feasible FF violated: %v", row)
			}
		}
	}
	if !foundCross {
		t.Fatal("no infeasible no-skip speed in the sweep")
	}
}

func TestNMaxMonotoneInDeviceSpeed(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	res := NMax()
	prev := 0
	for _, row := range res.Rows {
		n := cellInt(t, row[4])
		if n < prev {
			t.Fatalf("n_max decreased on a faster device: %v", res.Rows)
		}
		prev = n
	}
	for _, note := range res.Notes {
		if strings.Contains(note, "BUG") {
			t.Fatal(note)
		}
	}
}

func TestReadAheadProvisioningKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	res := ReadAhead()
	first := cellInt(t, res.Rows[0][4])
	last := cellInt(t, res.Rows[len(res.Rows)-1][4])
	if first == 0 {
		t.Fatal("under-provisioned streams showed no violations")
	}
	if last != 0 {
		t.Fatalf("fully provisioned streams violated %d times", last)
	}
}

func TestE3ConcurrentAllClean(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res := E3Concurrent()
	for _, row := range res.Rows {
		if row[3] == "-" {
			continue
		}
		if v := cellInt(t, row[3]); v != 0 {
			t.Fatalf("violations at the Eq. 3 bound: %v", row)
		}
	}
}

func TestE46MixedMediaOrdering(t *testing.T) {
	res := E46MixedMedia()
	// For each q_v, the heterogeneous bound must be the largest.
	type key struct{ qv string }
	best := map[string]float64{}
	het := map[string]float64{}
	for _, row := range res.Rows {
		if row[4] == "-" {
			continue
		}
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if row[2] == "heterogeneous" {
			het[row[0]] = v
		} else if v > best[row[0]] {
			best[row[0]] = v
		}
	}
	for qv, h := range het {
		if h < best[qv] {
			t.Fatalf("q_v=%s: heterogeneous bound %.2f below homogeneous %.2f", qv, h, best[qv])
		}
	}
}

func TestVBRExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	res := VBR()
	// Storage gain must be meaningfully above 1×.
	var gain float64
	for _, row := range res.Rows {
		if row[0] == "storage gain" {
			_, err := fmt.Sscanf(row[2], "%f", &gain)
			if err != nil {
				t.Fatal(err)
			}
		}
		if strings.HasPrefix(row[0], "sim violations") {
			if cellInt(t, row[2]) != 0 {
				t.Fatalf("VBR playback violated: %v", row)
			}
		}
	}
	if gain < 1.5 {
		t.Fatalf("storage gain %.2f×, want ≥ 1.5×", gain)
	}
}

func TestScanExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	res := Scan()
	if len(res.Rows) != 3 {
		t.Fatalf("rows %v", res.Rows)
	}
	zig := cellInt(t, res.Rows[0][2])
	sorted := cellInt(t, res.Rows[1][2])
	if sorted > zig {
		t.Fatalf("cylinder-sorted order needs more k (%d) than zig-zag (%d)", sorted, zig)
	}
	var zigSeek, scanSeek float64
	fmt.Sscanf(res.Rows[0][3], "%f", &zigSeek)
	fmt.Sscanf(res.Rows[2][3], "%f", &scanSeek)
	if scanSeek >= zigSeek {
		t.Fatalf("C-SCAN did not reduce total seek: %.1f vs %.1f", scanSeek, zigSeek)
	}
}

func TestReorgExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	res := Reorg()
	if len(res.Rows) != 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	before := cellInt(t, res.Rows[0][3])
	after := cellInt(t, res.Rows[1][3])
	want := cellInt(t, res.Rows[1][4])
	if before >= want {
		t.Fatalf("fragmented disk placed all %d blocks; no failure to fix", before)
	}
	if after != want {
		t.Fatalf("after compaction placed %d of %d blocks", after, want)
	}
}

func TestIntervalCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res := IntervalCache()
	nmax := continuity.AdmissionFor(stdDevice()).NMax(cachePlanRequest())
	if len(res.Rows) < 2 {
		t.Fatalf("rows %v", res.Rows)
	}
	off := res.Rows[0]
	if cellInt(t, off[1]) != nmax || cellInt(t, off[3]) != 0 {
		t.Fatalf("cache disabled: admitted %s (want n_max=%d) cache-served %s (want 0)", off[1], nmax, off[3])
	}
	on := res.Rows[len(res.Rows)-1]
	if got := cellInt(t, on[1]); got < nmax+2 {
		t.Fatalf("largest cache admitted %d plays, want >= n_max+2 = %d", got, nmax+2)
	}
	if cellInt(t, on[4]) != 0 {
		t.Fatalf("largest cache still rejected %s plays", on[4])
	}
	if cellInt(t, on[5]) != 0 {
		t.Fatalf("cache-admitted plays violated continuity: %v", on)
	}
	if cellInt(t, on[3]) == 0 {
		t.Fatal("no play was cache-served at the largest cache size")
	}
}

func TestFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos simulation sweep")
	}
	res := FaultTolerance()
	if len(res.Rows) != 5 {
		t.Fatalf("rows %v", res.Rows)
	}
	// Columns: scenario, streams, completed, stopped, faults, retries, degraded, late.
	for _, row := range res.Rows {
		streams, completed := cellInt(t, row[1]), cellInt(t, row[2])
		if completed != streams {
			t.Fatalf("%s: %d/%d streams aborted mid-play", row[0], streams-completed, streams)
		}
		if stopped := cellInt(t, row[3]); stopped != 0 {
			t.Fatalf("%s: %d escalation stops at realistic error rates", row[0], stopped)
		}
		faults, retries, degraded := cellInt(t, row[4]), cellInt(t, row[5]), cellInt(t, row[6])
		if degraded > faults {
			t.Fatalf("%s: %d degraded blocks exceed %d injected faults", row[0], degraded, faults)
		}
		// Bounded degradation: well under 10%% of the blocks played.
		if total := streams * 100; degraded*10 >= total {
			t.Fatalf("%s: %d of %d blocks degraded", row[0], degraded, total)
		}
		if row[0] != "off" && faults > 0 && retries+degraded == 0 {
			t.Fatalf("%s: %d faults injected but none handled by the ladder", row[0], faults)
		}
		if late := cellInt(t, row[7]); late != 0 {
			t.Fatalf("%s: %d late blocks — degradation leaked into continuity", row[0], late)
		}
	}
	off := res.Rows[0]
	if cellInt(t, off[4])+cellInt(t, off[5])+cellInt(t, off[6]) != 0 {
		t.Fatalf("injection disabled but fault path active: %v", off)
	}
	for _, row := range res.Rows[1:] {
		if cellInt(t, row[4]) == 0 {
			t.Fatalf("%s: storm injected no faults", row[0])
		}
	}
}

func TestQoS(t *testing.T) {
	if testing.Short() {
		t.Skip("diurnal load simulation")
	}
	res := QoS()
	if len(res.Rows) != 4 {
		t.Fatalf("rows %v", res.Rows)
	}
	// Columns: phase, offered, admitted, rejected, degraded, recovered,
	// prem viol, shed blk.
	offPeak, peak, drain, base := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]
	if cellInt(t, offPeak[1]) != cellInt(t, offPeak[2]) || cellInt(t, offPeak[4]) != 0 {
		t.Fatalf("off-peak load not admitted clean at full rate: %v", offPeak)
	}
	if cellInt(t, peak[4]) == 0 {
		t.Fatalf("no stream degraded at peak: %v", peak)
	}
	if cellInt(t, drain[5]) == 0 {
		t.Fatalf("no degraded stream recovered to full rate off-peak: %v", drain)
	}
	if cellInt(t, drain[6]) != 0 {
		t.Fatalf("premium streams disturbed: %v", drain)
	}
	if cellInt(t, base[3]) == 0 {
		t.Fatalf("baseline rejected nothing — overload too weak: %v", base)
	}
	qosServed := cellInt(t, offPeak[2]) + cellInt(t, peak[2])
	if qosServed <= cellInt(t, base[2]) {
		t.Fatalf("QoS served %d streams, baseline %s — shedding bought nothing", qosServed, base[2])
	}
}

// TestQoSPeakRound drives just the overloaded peak of EXP-QOS — class
// negotiation, shedding, and the per-round class pass — on a small
// two-spindle rig. It is the CI race detector's entry point for the
// QoS layer, so it stays fast.
func TestQoSPeakRound(t *testing.T) {
	const p = 2
	r := newQoSRig(p)
	adm := continuity.AdmissionFor(r.dev)
	tmpl := continuity.Request{
		Name: "video", Granularity: 3, UnitBits: frameBytes * 8, Rate: 30,
		Scattering: r.scattering(),
	}
	feasible := func(n, k int) bool {
		set := make([]continuity.Request, n)
		for i := range set {
			set[i] = tmpl
		}
		return adm.FeasibleTransient(set, k)
	}
	k := 1
	for !feasible(3, k) {
		k++
	}
	if feasible(6, k) {
		t.Skip("device admits the whole burst at full rate; peak cannot overload")
	}
	mgr := msm.New(r.arr, adm)
	mgr.SetPolicy(msm.NaiveJump)
	mgr.ForceK(k)
	mgr.SetQoS(msm.QoSPolicy{MaxStride: continuity.DefaultMaxStride})
	classes := []continuity.Class{
		continuity.BestEffort, continuity.Standard,
		continuity.BestEffort, continuity.Standard,
		continuity.Premium, continuity.BestEffort,
	}
	degraded := 0
	for sp := 0; sp < p; sp++ {
		for i, c := range classes {
			a := qosArrival{s: r.record(sp, 150), class: c}
			_, dec, err := mgr.AdmitPlay(r.planClassed(a, k))
			if err != nil {
				t.Fatalf("spindle %d arrival %d (%v): %v", sp, i, c, err)
			}
			mgr.ForceK(k)
			if dec.Stride > 1 {
				degraded++
			}
		}
		mgr.RunRound()
	}
	if degraded == 0 && mgr.Stats().LoadDemotions == 0 {
		t.Fatal("overloaded peak triggered no degradation and no shedding")
	}
	mgr.RunUntilDone()
	st := mgr.Stats()
	if st.ShedBlocks == 0 {
		t.Fatal("no blocks were shed by sub-sampled service")
	}
	qs := mgr.QoSStats()
	for c := range qs {
		if qs[c].Active != 0 {
			t.Fatalf("class %v still active after RunUntilDone", continuity.Class(c))
		}
	}
}

func TestStripedScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-spindle simulation sweep")
	}
	res := Stripe()
	if len(res.Rows) != 4 {
		t.Fatalf("rows %v", res.Rows)
	}
	// Columns: config, n_max/sp, streams, admitted, completed, late viol, degraded, stops.
	nmax := cellInt(t, res.Rows[0][1])
	if nmax < 2 {
		t.Fatalf("single-spindle n_max = %d; geometry too tight", nmax)
	}
	for i, p := range []int{1, 2, 4} {
		row := res.Rows[i]
		streams, admitted, completed := cellInt(t, row[2]), cellInt(t, row[3]), cellInt(t, row[4])
		if streams != p*nmax {
			t.Fatalf("%s: offered %d streams, want p·n_max = %d", row[0], streams, p*nmax)
		}
		if admitted != streams {
			t.Fatalf("%s: admitted %d of %d — per-spindle admission lost capacity", row[0], admitted, streams)
		}
		if completed != streams {
			t.Fatalf("%s: completed %d of %d", row[0], completed, streams)
		}
		if late := cellInt(t, row[5]); late != 0 {
			t.Fatalf("%s: %d continuity violations at p·n_max", row[0], late)
		}
		if deg := cellInt(t, row[6]); deg != 0 {
			t.Fatalf("%s: %d degraded blocks with no faults injected", row[0], deg)
		}
	}
	chaos := res.Rows[3]
	if late := cellInt(t, chaos[5]); late != 0 {
		t.Fatalf("chaos: %d violations on healthy spindles", late)
	}
	if deg := cellInt(t, chaos[6]); deg == 0 {
		t.Fatal("chaos: dead spindle produced no degraded blocks")
	}
	if stops := cellInt(t, chaos[7]); stops == 0 {
		t.Fatal("chaos: all-degraded stream never escalated to a stop")
	}
}

func TestRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("mirrored-array simulation sweep")
	}
	res := Rebuild()
	if len(res.Rows) != 5 {
		t.Fatalf("rows %v", res.Rows)
	}
	// Columns: phase, n_max/sp, streams, admitted, completed, prem viol,
	// degraded, stops, chunks.
	nmax := cellInt(t, res.Rows[0][1])
	if nmax < 2 {
		t.Fatalf("per-spindle n_max = %d; geometry too tight", nmax)
	}
	healthy, degraded, rebuilt := res.Rows[0], res.Rows[2], res.Rows[4]
	if got := cellInt(t, healthy[3]); got != 4*nmax {
		t.Fatalf("healthy array admitted %d, want p·n_max = %d", got, 4*nmax)
	}
	if got := cellInt(t, degraded[3]); got != 3*nmax {
		t.Fatalf("degraded array admitted %d, want (p-1)·n_max = %d", got, 3*nmax)
	}
	if got := cellInt(t, rebuilt[3]); got != 4*nmax {
		t.Fatalf("rebuilt array admitted %d, want p·n_max restored = %d", got, 4*nmax)
	}
	service := res.Rows[1]
	if got := cellInt(t, service[4]); got != 4 {
		t.Fatalf("only %d/4 streams survived the spindle loss", got)
	}
	if got := cellInt(t, service[5]); got != 0 {
		t.Fatalf("%d premium continuity violations during the loss", got)
	}
	if got := cellInt(t, service[6]); got == 0 {
		t.Fatal("the die scenario never degraded the victim stream")
	}
	if got := cellInt(t, service[7]); got != 0 {
		t.Fatalf("%d streams aborted instead of re-steered", got)
	}
	if got := cellInt(t, res.Rows[3][8]); got == 0 {
		t.Fatal("online rebuild copied no chunks")
	}
	if got := cellInt(t, rebuilt[5]); got != 0 {
		t.Fatalf("post-rebuild replay had %d violations", got)
	}
}
