package experiments

import (
	"errors"
	"fmt"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/core"
	"mmfs/internal/disk"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// E1Sequential regenerates Eq. 1's feasibility frontier: for each
// granularity q, the largest scattering parameter l_ds under which
// sequential retrieval (read, then display, then next read) stays
// continuous — validated by a recurrence simulation of the sequential
// device over the disk's seek model, at the bound and just past it.
func E1Sequential() Result {
	res := Result{
		ID:      "EXP-E1",
		Title:   "Sequential retrieval continuity (Eq. 1): max scattering vs granularity",
		Headers: []string{"q (frames/blk)", "block (ms)", "read+disp (ms)", "max l_ds (ms)", "viol @bound", "viol @bound+1cyl"},
	}
	g := disk.DefaultGeometry()
	dev := stdDevice()
	m := ntsc()
	cfg := continuity.Config{Arch: continuity.Sequential}
	for _, q := range []int{1, 2, 4, 8, 16, 32} {
		lds, ok := continuity.MaxScattering(cfg, q, m, dev)
		if !ok {
			res.AddRow(fmt.Sprint(q), ms(m.PlaybackDuration(q)), "-", "infeasible", "-", "-")
			continue
		}
		busy := dev.TransferTime(m.BlockBits(q)) + m.DisplayTime(q)
		dist := g.MaxDistanceWithin(continuity.Duration(lds))
		vAt := sequentialViolations(g, q, m, dist)
		vPast := sequentialViolations(g, q, m, dist+1)
		res.AddRow(fmt.Sprint(q), ms(m.PlaybackDuration(q)), ms(busy), ms(lds),
			fmt.Sprint(vAt), fmt.Sprint(vPast))
	}
	res.Note("larger blocks amortize the scattering budget: max l_ds grows linearly with q (§3.3.4)")
	res.Note("the recurrence sim violates continuity exactly when block separation exceeds the Eq. 1 distance")
	return res
}

// sequentialViolations simulates the strictly sequential device: the
// read of block j+1 begins only after block j has been read and
// displayed. Blocks are spaced dist cylinders apart on the seek model.
// It returns the number of blocks whose data was not ready by its
// playback deadline over a 200-block strand.
func sequentialViolations(g disk.Geometry, q int, m continuity.Media, dist int) int {
	if dist < 0 {
		dist = 0
	}
	if dist > g.Cylinders-1 {
		dist = g.Cylinders - 1
	}
	lds := continuity.Seconds(g.AccessTime(dist))
	dev := continuity.Device{TransferRate: g.TransferRateBits(), MaxAccess: continuity.Seconds(g.MaxAccessTime())}
	read := lds + dev.TransferTime(m.BlockBits(q))
	disp := m.DisplayTime(q)
	dur := m.PlaybackDuration(q)
	const blocks = 200
	violations := 0
	// finish(j): block j fully read and pushed through the display
	// path; playback of block 0 starts at finish(0).
	finish := read + disp
	playStart := finish
	for j := 1; j < blocks; j++ {
		finish += read + disp // next read starts after display completes
		deadline := playStart + float64(j)*dur
		if finish > deadline+1e-12 {
			violations++
		}
	}
	return violations
}

// E2Pipelined regenerates Eq. 2's frontier and validates it end-to-end
// on the storage manager: a strand is recorded with its blocks exactly
// at the frontier distance and played with two buffers (zero
// violations), then re-recorded one cylinder past the frontier
// (violations appear).
func E2Pipelined() Result {
	res := Result{
		ID:      "EXP-E2",
		Title:   "Pipelined retrieval continuity (Eq. 2): max scattering vs granularity",
		Headers: []string{"q (frames/blk)", "block (ms)", "xfer (ms)", "max l_ds (ms)", "max dist (cyl)", "viol @bound", "viol @bound+1cyl"},
	}
	dev := stdDevice()
	m := ntsc()
	cfg := continuity.Config{Arch: continuity.Pipelined}
	for _, q := range []int{1, 2, 4, 8, 16, 32} {
		lds, ok := continuity.MaxScattering(cfg, q, m, dev)
		if !ok {
			res.AddRow(fmt.Sprint(q), ms(m.PlaybackDuration(q)), "-", "infeasible", "-", "-", "-")
			continue
		}
		g := disk.DefaultGeometry()
		dist := g.MaxDistanceWithin(continuity.Duration(lds))
		if dist > g.Cylinders-2 {
			dist = g.Cylinders - 2
		}
		lo := dist - 30
		vAt := pipelinedViolations(q, lo, dist)
		vPast := -1
		if realized := continuity.Seconds(g.AccessTime(dist + 1)); realized > lds {
			hi := dist + 40
			if hi > g.Cylinders-1 {
				hi = g.Cylinders - 1
			}
			vPast = pipelinedViolations(q, dist+1, hi)
		}
		past := "n/a"
		if vPast >= 0 {
			past = fmt.Sprint(vPast)
		}
		res.AddRow(fmt.Sprint(q), ms(m.PlaybackDuration(q)), ms(dev.TransferTime(m.BlockBits(q))),
			ms(lds), fmt.Sprint(dist), fmt.Sprint(vAt), past)
	}
	res.Note("pipelining removes the display term from the budget, so max l_ds exceeds the sequential bound at every q")
	return res
}

// pipelinedViolations records a video strand whose inter-block
// separations fall in [distLo, distHi] cylinders and plays it with two
// buffers, returning the violation count.
func pipelinedViolations(q, distLo, distHi int) int {
	r := newRig()
	s := r.recordStrandAtDistance(q, distLo, distHi, 150)
	v, _ := r.playStrands([]*strand.Strand{s}, 1, 2, 1)
	return v
}

// recordStrandAtDistance records a video strand at granularity q with
// successive blocks [distLo, distHi] cylinders apart. Extreme
// distances (a large fraction of the disk) can only sustain a short
// ping-pong chain between the disk's ends before the end regions fill,
// so recording stops at the first constrained-allocation failure; the
// strand keeps whatever prefix was placed (at least a handful of
// blocks at any distance on an empty disk).
func (r *rig) recordStrandAtDistance(q, distLo, distHi, blocks int) *strand.Strand {
	g := r.fs.Disk().Geometry()
	if distLo < 1 {
		distLo = 1
	}
	if distHi > g.Cylinders-1 {
		distHi = g.Cylinders - 1
	}
	if distLo > distHi {
		distLo = distHi
	}
	id := r.fs.Strands().NewID()
	w, err := strand.NewWriter(r.fs.Disk(), r.fs.Allocator(), strand.WriterConfig{
		ID:          id,
		Medium:      layout.Video,
		Rate:        30,
		UnitBytes:   frameBytes,
		Granularity: q,
		Constraint:  alloc.Constraint{MinCylinders: distLo, MaxCylinders: distHi},
	})
	if err != nil {
		panic(err)
	}
	src := media.NewVideoSource(blocks*q, frameBytes, 30, int64(distHi*1000+q))
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			if errors.Is(err, alloc.ErrNoSpace) && w.BlocksWritten() >= 4 {
				break
			}
			panic(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		panic(err)
	}
	r.fs.Strands().Put(s)
	return s
}

// E3Concurrent regenerates Eq. 3's frontier for p ∈ {2, 4, 8}: with p
// parallel disk accesses the read of a block may take up to (p−1)
// block playback durations. The simulation uses p head assemblies
// fetching batches of p blocks; the Eq. 3 bound is sufficient in the
// simulator (whose double-buffered discipline tolerates up to p block
// durations), so zero violations at the bound confirm it conservative.
func E3Concurrent() Result {
	res := Result{
		ID:      "EXP-E3",
		Title:   "Concurrent retrieval continuity (Eq. 3): max scattering vs degree of concurrency",
		Headers: []string{"p (heads)", "q (frames/blk)", "max l_ds Eq.3 (ms)", "viol @Eq.3 bound", "viol @2p·dur dist"},
	}
	m := ntsc()
	for _, p := range []int{2, 4, 8} {
		cfg := continuity.Config{Arch: continuity.Concurrent, P: p}
		for _, q := range []int{1, 3} {
			g := disk.ArrayGeometry(p)
			dev := continuity.Device{
				TransferRate: g.TransferRateBits(),
				MaxAccess:    continuity.Seconds(g.MaxAccessTime()),
				MinAccess:    continuity.Seconds(g.MinAccessTime()),
			}
			lds, ok := continuity.MaxScattering(cfg, q, m, dev)
			if !ok {
				res.AddRow(fmt.Sprint(p), fmt.Sprint(q), "infeasible", "-", "-")
				continue
			}
			dist := g.MaxDistanceWithin(continuity.Duration(lds))
			if dist > g.Cylinders-1 {
				dist = g.Cylinders - 1
			}
			vAt := concurrentViolations(p, q, dist-30, dist)
			// A separation whose access time exceeds even the
			// simulator's p·dur tolerance must violate.
			tooFar := g.MaxDistanceWithin(continuity.Duration(
				float64(p) * m.PlaybackDuration(q) * 2)) // far past any bound
			vPast := -1
			if tooFar > dist && continuity.Seconds(g.AccessTime(tooFar)) > float64(p)*m.PlaybackDuration(q) {
				vPast = concurrentViolations(p, q, tooFar, tooFar+40)
			}
			past := "n/a"
			if vPast >= 0 {
				past = fmt.Sprint(vPast)
			}
			res.AddRow(fmt.Sprint(p), fmt.Sprint(q), ms(lds), fmt.Sprint(vAt), past)
		}
	}
	res.Note("p parallel accesses multiply the scattering budget by (p−1): RAID-class concurrency admits nearly unconstrained placement for NTSC-rate media")
	return res
}

// concurrentViolations plays a strand with blocks [distLo, distHi]
// apart on a p-head disk, fetching p blocks in parallel.
func concurrentViolations(p, q, distLo, distHi int) int {
	fs, err := core.Format(core.Options{
		Geometry: disk.ArrayGeometry(p),
		Arch:     continuity.Config{Arch: continuity.Concurrent, P: p},
	})
	if err != nil {
		panic(err)
	}
	r := &rig{fs: fs}
	s := r.recordStrandAtDistance(q, distLo, distHi, 120)
	mgr := fs.NewManager()
	mgr.SetConcurrency(p)
	// Admission is a multi-request gate; this single-stream bound
	// validation overrides its scattering estimate so the measured
	// disk timing alone decides the outcome.
	plan, err := msm.PlanStrandPlay(fs.Disk(), s, msm.PlanOptions{
		ReadAhead:  p,
		Buffers:    2 * p,
		Scattering: continuity.Seconds(fs.Disk().Geometry().MinAccessTime()),
	})
	if err != nil {
		panic(err)
	}
	id, _, err := mgr.AdmitPlay(plan)
	if err != nil {
		return -1
	}
	mgr.RunUntilDone()
	v, err := mgr.Violations(id)
	if err != nil {
		panic(err)
	}
	return len(v)
}

// E46MixedMedia regenerates Eqs. 4–6: the continuity thresholds for
// storing one audio and one video component under homogeneous blocks
// (audio-block duration n video blocks) versus heterogeneous blocks,
// and validates the homogeneous scheme by playing a recorded AV rope.
func E46MixedMedia() Result {
	res := Result{
		ID:      "EXP-E46",
		Title:   "Mixed audio+video storage (Eqs. 4–6): max scattering by layout",
		Headers: []string{"q_v", "n (dur ratio)", "layout", "q_a (samples/blk)", "max l_ds (ms)", "feasible"},
	}
	dev := stdDevice()
	video := ntsc()
	audio := continuity.TelephoneAudio()
	for _, qv := range []int{1, 3, 6} {
		for _, n := range []float64{1, 2, 4} {
			hom, err := continuity.DeriveAV(continuity.HomogeneousBlocks, qv, video, audio, n, dev)
			if err != nil {
				res.AddRow(fmt.Sprint(qv), fmt.Sprint(n), "homogeneous", "-", "-", "no")
			} else {
				res.AddRow(fmt.Sprint(qv), fmt.Sprint(n), "homogeneous",
					fmt.Sprint(hom.AudioGran), ms(hom.MaxScattering), "yes")
			}
		}
		het, err := continuity.DeriveAV(continuity.HeterogeneousBlocks, qv, video, audio, 1, dev)
		if err != nil {
			res.AddRow(fmt.Sprint(qv), "1", "heterogeneous", "-", "-", "no")
		} else {
			res.AddRow(fmt.Sprint(qv), "1", "heterogeneous",
				fmt.Sprint(het.AudioGran), ms(het.MaxScattering), "yes")
		}
	}

	// Validate both schemes end to end: the same 4-second AV content
	// recorded as homogeneous strands (explicit synchronization, two
	// requests) and as one heterogeneous strand (implicit
	// synchronization, one request); measure disk accesses and
	// violations.
	type av struct {
		name     string
		hetero   bool
		accesses uint64
		requests int
		viol     int
	}
	trials := []av{{name: "homogeneous"}, {name: "heterogeneous", hetero: true}}
	for i := range trials {
		r := newRig()
		sess, err := r.fs.Record(core.RecordSpec{
			Creator:       "exp",
			Video:         media.NewVideoSource(120, frameBytes, 30, 46),
			Audio:         media.NewAudioSource(60, 800, 15, 0, 1, 47),
			Heterogeneous: trials[i].hetero,
		})
		if err != nil {
			panic(err)
		}
		r.fs.Manager().RunUntilDone()
		rp, err := sess.Finish()
		if err != nil {
			panic(err)
		}
		mgr := r.fs.NewManager()
		r.fs.Disk().ResetStats()
		h, err := r.fs.Play("exp", rp.ID, 0 /* AudioVisual */, 0, 0, msm.PlanOptions{ReadAhead: 2})
		if err != nil {
			panic(err)
		}
		mgr.RunUntilDone()
		viol, err := r.fs.PlayViolations(h)
		if err != nil {
			panic(err)
		}
		trials[i].viol = viol
		trials[i].accesses = r.fs.Disk().Stats().Reads
		trials[i].requests = len(h.Requests())
	}
	res.Note("homogeneous blocks pay one extra scattering gap per audio block; heterogeneous (or adjacent placement, Eq. 6) fold audio into the video budget")
	for _, tr := range trials {
		res.Note("measured %s playback of the same 4 s AV content: %d request(s), %d disk reads, %d violations",
			tr.name, tr.requests, tr.accesses, tr.viol)
	}
	return res
}

// HDTV regenerates §3's motivating arithmetic: a future disk array
// with 100 parallel heads and 10 ms positioning cannot sustain one
// 2.5 Gbit/s HDTV strand at 4 KB blocks under unconstrained (random)
// allocation, while constrained allocation makes the same hardware
// sufficient.
func HDTV() Result {
	res := Result{
		ID:      "EXP-HDTV",
		Title:   "HDTV motivating arithmetic (§3): random vs constrained allocation on a 100-head array",
		Headers: []string{"allocation", "per-access overhead (ms)", "effective rate (Gbit/s)", "HDTV 2.5 Gbit/s"},
	}
	const (
		heads       = 100
		blockBytes  = 4096
		posOverhead = 0.010 // seek + latency, seconds
		hdtvRate    = 2.5e9
	)
	blockBits := float64(blockBytes * 8)
	// Random allocation: every block pays the full positioning cost;
	// the paper neglects transfer time at these block sizes.
	randomRate := heads * blockBits / posOverhead
	res.AddRow("random (paper's example)", "10.00", fmt.Sprintf("%.2f", randomRate/1e9), yesno(randomRate >= hdtvRate))

	// Same array under our seek model with transfer time included.
	g := disk.ArrayGeometry(heads)
	perHead := g.TransferRateBits()
	xfer := blockBits / perHead
	avgAccess := continuity.Seconds(g.SeekTime((g.Cylinders-1)/3) + g.AvgRotationalLatency())
	modelRandom := heads * blockBits / (avgAccess + xfer)
	res.AddRow("random (our seek model)", ms(avgAccess), fmt.Sprintf("%.2f", modelRandom/1e9), yesno(modelRandom >= hdtvRate))

	// Constrained allocation: successive blocks adjacent, so only
	// transfer time remains.
	constrained := float64(heads) * perHead
	res.AddRow("constrained (adjacent blocks)", "0.00", fmt.Sprintf("%.2f", constrained/1e9), yesno(constrained >= hdtvRate))

	res.Note("paper: \"future disk arrays with 100 parallel heads and ... 10 ms will be able to support 0.32 Gigabits/s ... inadequate for ... HDTV ... up to 2.5 Gigabit/s\"")
	res.Note("measured random-allocation rate %.2f Gbit/s reproduces the 0.32 Gbit/s figure; constrained allocation clears the HDTV requirement", randomRate/1e9)
	return res
}

// FastForward regenerates §3.3.2's fast-forward analysis: speeding up
// without skipping tightens continuity AND buffering; skipping blocks
// tightens only continuity (via stretched effective scattering).
func FastForward() Result {
	res := Result{
		ID:      "EXP-FF",
		Title:   "Fast-forward (§3.3.2): continuity and buffering vs speed, with and without skipping",
		Headers: []string{"speed", "skip", "analytic feasible", "buffer ×", "sim violations"},
	}
	dev := stdDevice()
	m := ntsc()
	cfg := continuity.Config{Arch: continuity.Pipelined}
	const q = 3
	g := disk.DefaultGeometry()
	lds := continuity.Seconds(g.AccessTime(32))

	r := newRig()
	_, s := r.recordVideoRope(20, 4242)

	for _, speed := range []float64{1, 2, 4, 8} {
		for _, skip := range []bool{false, true} {
			if speed == 1 && skip {
				continue
			}
			ff := continuity.FastForward{Speed: speed, Skip: skip}
			feasible := ff.Feasible(cfg, q, lds, m, dev)
			viol := r.playFF(s, speed, skip)
			res.AddRow(
				fmt.Sprintf("%.0f×", speed),
				yesno(skip),
				yesno(feasible),
				fmt.Sprintf("%.0f", ff.BufferMultiplier()),
				fmt.Sprint(viol),
			)
		}
	}
	res.Note("paper: \"fast-forwarding without skipping frames increases both continuity and buffering requirements, fast-forwarding with skipping increases only the continuity requirement\"")
	res.Note("the crossover appears where the no-skip variant becomes infeasible while the skipping variant still plays clean")
	return res
}

// playFF plays the strand at the given speed on a fresh manager and
// returns the violation count.
func (r *rig) playFF(s *strand.Strand, speed float64, skip bool) int {
	mgr := r.fs.NewManager()
	buffers := 4
	if !skip && speed > 1 {
		buffers = int(4 * speed)
	}
	plan, err := msm.PlanStrandPlay(r.fs.Disk(), s, msm.PlanOptions{
		ReadAhead: 2,
		Buffers:   buffers,
		Speed:     speed,
		Skip:      skip,
	})
	if err != nil {
		panic(err)
	}
	id, _, err := mgr.AdmitPlay(plan)
	if err != nil {
		return -1
	}
	mgr.RunUntilDone()
	v, err := mgr.Violations(id)
	if err != nil {
		panic(err)
	}
	return len(v)
}
