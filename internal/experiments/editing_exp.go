package experiments

import (
	"fmt"
	"math/rand"

	"mmfs/internal/core"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/rope"
)

// EditCopy regenerates Eqs. 19–20: the number of blocks that must be
// copied at an edit junction to keep the scattering parameter within
// bounds, on sparsely and densely occupied disks, compared against the
// analytic bounds C_b = l_max_seek/(2·l_lower) (sparse) and
// l_max_seek/l_lower (dense). Each edited rope is then played to
// confirm zero continuity violations.
func EditCopy() Result {
	res := Result{
		ID:      "EXP-ED",
		Title:   "Scattering maintenance while editing (Eqs. 19–20): blocks copied at junctions",
		Headers: []string{"fill", "junction", "dist (cyl)", "copied", "predicted", "worst case", "post-edit viol"},
	}
	for _, fill := range []float64{0, 0.45, 0.8} {
		r := newRig()
		// Clips recorded in different disk regions so the CONCATE
		// junctions span long seeks; both orders give two junction
		// distances per fill level.
		rp1, _ := r.recordVideoRope(8, 5001)
		rp2, _ := r.recordVideoRope(8, 5002)

		if fill > 0 {
			fillDisk(r, fill)
		}
		occ := r.fs.Occupancy()

		maxCyl := r.fs.Options().TargetCylinders
		worst := (r.fs.Disk().Geometry().Cylinders-1)/maxCyl + 1
		for _, pair := range []struct {
			name string
			a, b rope.ID
		}{
			{"fwd", rp1.ID, rp2.ID},
			{"rev", rp2.ID, rp1.ID},
		} {
			cat, er, err := r.fs.Concate("exp", pair.a, pair.b)
			if err != nil {
				panic(err)
			}
			dist, copied := 0, er.CopiedBlocks()
			for _, j := range er.Smoothed {
				if j.DistCylinders > dist {
					dist = j.DistCylinders
				}
			}
			// The even-redistribution criterion predicts
			// ⌈(dist−maxCyl)/(maxCyl−1)⌉ copies on an uncontended
			// disk (the Eq. 19 regime in placement-policy units).
			pred := 0
			if dist > maxCyl {
				pred = (dist - maxCyl + maxCyl - 2) / (maxCyl - 1)
			}

			mgr := r.fs.NewManager()
			plan, err := r.fs.Ropes().CompilePlay(r.fs.Disk(), cat, rope.VideoOnly, 0, cat.Length(), msm.PlanOptions{ReadAhead: 2, Buffers: 8})
			if err != nil {
				panic(err)
			}
			id, _, err := mgr.AdmitPlay(plan)
			viol := -1
			if err == nil {
				mgr.RunUntilDone()
				v, verr := mgr.Violations(id)
				if verr != nil {
					panic(verr)
				}
				viol = len(v)
			}
			res.AddRow(
				fmt.Sprintf("%.0f%% (occ %.0f%%)", fill*100, occ*100),
				pair.name,
				fmt.Sprint(dist),
				fmt.Sprint(copied),
				fmt.Sprint(pred),
				fmt.Sprint(worst),
				fmt.Sprint(viol),
			)
			// Remove the derived rope so the next trial sees the
			// same strand population.
			if _, err := r.fs.DeleteRope("exp", cat.ID); err != nil {
				panic(err)
			}
		}
	}
	bsT, bdT := timeBounds()
	res.Note("paper time-metric bounds on this device: C_sparse = l_max_seek/(2·l_lower) = %d, C_dense = l_max_seek/l_lower = %d; rotation-dominated access makes them small in time units, so the placement-policy (cylinder) prediction governs the measured counts", bsT, bdT)
	res.Note("copying creates a new strand (strands are immutable), whose ID appears in the edited rope's interval list; dense fills push copies off their ideal positions, growing counts toward the worst case")
	return res
}

// timeBounds evaluates Eqs. 19/20 in the paper's time metric for the
// default device.
func timeBounds() (sparse, dense int) {
	r := newRig()
	sparse, dense, err := r.fs.Editor().Bounds()
	if err != nil {
		panic(err)
	}
	return sparse, dense
}

// fillDisk raises disk occupancy to roughly the target fraction with
// filler extents spread uniformly across the cylinders (deterministic
// PRNG), modeling a disk shared by many other strands and text files
// rather than one filled front-to-back.
func fillDisk(r *rig, target float64) {
	g := r.fs.Disk().Geometry()
	a := r.fs.Allocator()
	rng := rand.New(rand.NewSource(4099))
	fails := 0
	for a.Occupancy() < target && fails < 64 {
		cyl := rng.Intn(g.Cylinders)
		n := 4 + rng.Intn(24)
		if _, err := a.AllocateNearCylinder(cyl, n); err != nil {
			fails++
			continue
		}
	}
}

// Silence regenerates §4's silence elimination: audio recorded at
// increasing silence fractions stores proportionally fewer sectors,
// represents the silent stretches as NULL delay holders, and still
// plays (and fetches) with correct timing.
func Silence() Result {
	res := Result{
		ID:      "EXP-SIL",
		Title:   "Silence detection and elimination (§4): storage saved vs silence fraction",
		Headers: []string{"silence", "blocks", "null holders", "sectors stored", "sectors full", "saved", "play viol"},
	}
	for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		r := newRig()
		const units = 600 // 60 s of audio at 10 units/s
		// Silence bursts of 40 units (4 s) model conversational
		// pauses, long relative to the 4-unit block so elimination
		// is not defeated by block-boundary quantization.
		sess, err := r.fs.Record(core.RecordSpec{
			Creator:            "exp",
			Audio:              media.NewAudioSource(units, 800, 10, frac, 40, int64(6000+int(frac*100))),
			SilenceElimination: true,
		})
		if err != nil {
			panic(err)
		}
		r.fs.Manager().RunUntilDone()
		rp, err := sess.Finish()
		if err != nil {
			panic(err)
		}
		s := r.fs.Strands().MustGet(rp.Intervals[0].Audio.Strand)
		nulls := 0
		for i := 0; i < s.NumBlocks(); i++ {
			e, err := s.Block(i)
			if err != nil {
				panic(err)
			}
			if e.Silent() {
				nulls++
			}
		}
		stored := 0
		for _, run := range s.MediaRuns() {
			stored += run.Sectors
		}
		full := s.NumBlocks() * s.BlockSectors(r.fs.Disk().Geometry().SectorSize)

		h, err := r.fs.Play("exp", rp.ID, rope.AudioOnly, 0, 0, msm.PlanOptions{ReadAhead: 2})
		if err != nil {
			panic(err)
		}
		r.fs.Manager().RunUntilDone()
		viol, err := r.fs.PlayViolations(h)
		if err != nil {
			panic(err)
		}

		saved := 0.0
		if full > 0 {
			saved = 1 - float64(stored)/float64(full)
		}
		res.AddRow(
			fmt.Sprintf("%.0f%%", frac*100),
			fmt.Sprint(s.NumBlocks()),
			fmt.Sprint(nulls),
			fmt.Sprint(stored),
			fmt.Sprint(full),
			fmt.Sprintf("%.0f%%", saved*100),
			fmt.Sprint(viol),
		)
	}
	res.Note("paper: \"if the average energy level over a block falls below a threshold, no audio data is stored for that duration\"; NULL pointers in the primary blocks hold the delay")
	res.Note("storage saved tracks the injected silence fraction; delay holders cost no disk transfer at playback")
	return res
}
