package experiments

import (
	"fmt"

	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// FaultTolerance drives EXP-FT: a saturated admission set (n_max
// disk-bound streams) plays through seeded fault storms — transient
// read errors, latency spikes, and a grown media defect — and the
// storage manager's degradation ladder (in-round retry charged to
// Eq. 18's slack, zero-fill delivery, escalation stop) must keep every
// stream admitted to completion: zero aborted plays, a bounded number
// of degraded blocks, and no escalations at realistic error rates.
func FaultTolerance() Result {
	res := Result{
		ID:      "EXP-FT",
		Title:   "Fault storms: continuity-aware retry and graceful degradation",
		Headers: []string{"scenario", "streams", "completed", "stopped", "faults", "retries", "degraded", "late viol"},
	}
	adm := continuity.AdmissionFor(stdDevice())
	tmpl := cachePlanRequest()
	nmax := adm.NMax(tmpl)
	reqs := make([]continuity.Request, nmax)
	for i := range reqs {
		reqs[i] = tmpl
	}
	k, ok := adm.KTransient(reqs)
	if !ok {
		panic("experiments: no feasible k at n_max")
	}
	half := nmax / 2
	if half < 1 {
		half = 1
	}

	rows := []struct {
		spec    string // "" marks the grown-defect row, built per-strand
		streams int
	}{
		{"off", nmax},
		{fmt.Sprintf("seed=%d,readerr=0.02", 7+seedBase), nmax},
		{fmt.Sprintf("seed=%d,readerr=0.05,slow=0.05x3", 7+seedBase), nmax},
		{fmt.Sprintf("seed=%d,readerr=0.05", 7+seedBase), half}, // half load: Eq. 18 slack funds retries
		{"", nmax},
	}
	for rowIdx, row := range rows {
		r := newRig()
		strands := make([]*strand.Strand, row.streams)
		for i := range strands {
			_, strands[i] = r.recordVideoRope(10, seedBase+int64(6100+100*rowIdx+i))
		}
		var sc fault.Scenario
		var err error
		if row.spec == "" {
			// Grown defect: one sector pair inside stream 0's sixth
			// block persistently fails, so exactly that block degrades
			// (bad sectors are never retried).
			e, berr := strands[0].Block(5)
			if berr != nil {
				panic(berr)
			}
			sc = fault.Scenario{Seed: 7 + seedBase, BadSectors: []fault.SectorRange{{Start: int(e.Sector), Count: 2}}}
		} else if sc, err = fault.ParseScenario(row.spec); err != nil {
			panic(err)
		}
		fd := fault.New(r.fs.Disk().(*disk.Disk), sc)
		mgr := msm.New(fd, adm)
		// Forced k with no stepwise transitions: the whole population
		// is admitted at virtual time zero, exactly at the Eq. 18
		// operating point the slack-budget retry is derived from.
		mgr.SetPolicy(msm.NaiveJump)
		mgr.ForceK(k)
		ids := make([]msm.RequestID, 0, row.streams)
		for _, s := range strands {
			plan, perr := msm.PlanStrandPlay(fd, s, msm.PlanOptions{
				ReadAhead:  k,
				Buffers:    2 * k,
				Scattering: r.fs.TargetScattering(),
			})
			if perr != nil {
				panic(perr)
			}
			id, _, aerr := mgr.AdmitPlay(plan)
			if aerr != nil {
				panic(fmt.Sprintf("experiments: EXP-FT admission rejected at n=%d: %v", row.streams, aerr))
			}
			ids = append(ids, id)
		}
		mgr.RunUntilDone()

		completed, late := 0, 0
		for _, id := range ids {
			p, perr := mgr.Progress(id)
			if perr != nil {
				panic(perr)
			}
			if p.Done && p.BlocksServed == p.BlocksTotal {
				completed++
			}
			v, verr := mgr.Violations(id)
			if verr != nil {
				panic(verr)
			}
			for _, viol := range v {
				if viol.Cause == msm.CauseLate {
					late++
				}
			}
		}
		st := mgr.Stats()
		fst := fd.FaultStats()
		faults := fst.ReadErrors + fst.BadSectors
		label := row.spec
		if label == "" {
			label = "bad sector (2 LBAs)"
		}
		res.AddRow(label, fmt.Sprint(row.streams), fmt.Sprint(completed),
			fmt.Sprint(st.FaultStops), fmt.Sprint(faults),
			fmt.Sprint(st.Retries), fmt.Sprint(st.DegradedBlocks), fmt.Sprint(late))
	}

	res.Note("n_max = %d (Eq. 17), k = %d (Eq. 18); each stream plays a 10 s strand (100 blocks)", nmax, k)
	res.Note("retry budget per round is Eq. 18's measured slack k·γ − n·α − n·k·β: at n_max it is thin and faults mostly degrade to zero-fill; at half load retries absorb them")
	res.Note("degraded blocks glitch one block of one stream each — the play finishes and the admission set is untouched (zero aborted plays at realistic error rates)")
	res.Note("persistent defects (grown bad sectors) skip the retry tier: re-reading cannot succeed, so the block degrades directly every time it is played")
	res.Note("extension beyond the paper: Rangan & Vin assume a fault-free drive; the ladder spends only slack the worst-case admission charging already reserved")
	return res
}
