package experiments

import (
	"errors"
	"fmt"

	"mmfs/internal/alloc"
	"mmfs/internal/continuity"
	"mmfs/internal/disk"
	"mmfs/internal/fault"
	"mmfs/internal/layout"
	"mmfs/internal/media"
	"mmfs/internal/msm"
	"mmfs/internal/strand"
)

// stripeCyl is the striping unit for EXP-STRIPE: one tenth of the
// default geometry, the same value core.Options picks by default.
const stripeCyl = 120

// stripeRig is a p-spindle striped array with the allocator and strand
// store working in the array's logical address space; spindle
// faultSpindle is fault-wrapped when the scenario is active.
type stripeRig struct {
	raw []*disk.Disk
	arr *disk.Array
	a   *alloc.Allocator
	st  *strand.Store
	dev continuity.Device
	p   int
}

func newStripeRig(p, faultSpindle int, sc fault.Scenario) *stripeRig {
	g := disk.DefaultGeometry()
	devs := make([]disk.Device, p)
	raw := make([]*disk.Disk, p)
	for i := range devs {
		raw[i] = disk.MustNew(g)
		if i == faultSpindle && sc.Active() {
			devs[i] = fault.New(raw[i], sc)
		} else {
			devs[i] = raw[i]
		}
	}
	arr := disk.MustNewArray(devs, stripeCyl)
	a, err := alloc.New(arr.Geometry(), 64)
	if err != nil {
		panic(err)
	}
	lg := arr.Geometry()
	return &stripeRig{
		raw: raw, arr: arr, a: a,
		st: strand.NewStore(arr, a),
		dev: continuity.Device{
			TransferRate: lg.TransferRateBits(),
			MaxAccess:    continuity.Seconds(lg.MaxAccessTime()),
			MinAccess:    continuity.Seconds(lg.MinAccessTime()),
		},
		p: p,
	}
}

func (r *stripeRig) scattering() float64 {
	return continuity.Seconds(r.arr.Geometry().AccessTime(32))
}

// recordOn writes a video strand whose blocks all land on the given
// spindle, starting at the given spindle-local cylinder (stripe-group
// aligned placement, as the allocator would do for -disks p).
func (r *stripeRig) recordOn(spindle, localCyl, frames int, seed int64) *strand.Strand {
	start := (localCyl/stripeCyl*r.p+spindle)*stripeCyl + localCyl%stripeCyl
	w, err := strand.NewWriter(r.arr, r.a, strand.WriterConfig{
		ID:            r.st.NewID(),
		Medium:        layout.Video,
		Rate:          30,
		UnitBytes:     frameBytes,
		Granularity:   3,
		Constraint:    alloc.Constraint{MinCylinders: 1, MaxCylinders: 32},
		StartCylinder: start,
	})
	if err != nil {
		panic(err)
	}
	src := media.NewVideoSource(frames, frameBytes, 30, seed)
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if _, err := w.Append(u); err != nil {
			panic(err)
		}
	}
	s, err := w.Close()
	if err != nil {
		panic(err)
	}
	r.st.Put(s)
	for i := 0; i < s.NumBlocks(); i++ {
		e, berr := s.Block(i)
		if berr != nil {
			panic(berr)
		}
		if sp, one := r.arr.SpindleRange(int(e.Sector), int(e.SectorCount)); !one || sp != spindle {
			panic(fmt.Sprintf("experiments: EXP-STRIPE block %d on spindle %d, want %d", i, sp, spindle))
		}
	}
	return s
}

func (r *stripeRig) plan(s *strand.Strand) msm.PlayPlan {
	plan, err := msm.PlanStrandPlay(r.arr, s, msm.PlanOptions{
		ReadAhead: 1, Buffers: 16, Scattering: r.scattering(),
	})
	if err != nil {
		panic(err)
	}
	return plan
}

// Stripe drives EXP-STRIPE: a p-spindle cylinder-group-striped array
// services one concurrent sub-round per spindle each round, with
// Eq. 18 admission evaluated per spindle — so the admissible
// population scales as p·n_max while every stream stays
// violation-free. A final chaos row degrades one spindle and shows
// the damage confined to that spindle's streams.
func Stripe() Result {
	res := Result{
		ID:      "EXP-STRIPE",
		Title:   "Striped array: per-spindle admission scales n_max by the degree p",
		Headers: []string{"config", "n_max/sp", "streams", "admitted", "completed", "late viol", "degraded", "stops"},
	}

	template := continuity.Request{
		Name: "video", Granularity: 3, UnitBits: frameBytes * 8, Rate: 30,
	}

	// Scaling rows: saturate every spindle with its own n_max streams
	// (10 s strands, stripe-group aligned) and play them all.
	base := 0
	for _, p := range []int{1, 2, 4} {
		r := newStripeRig(p, -1, fault.Scenario{})
		adm := continuity.AdmissionFor(r.dev)
		tmpl := template
		tmpl.Scattering = r.scattering()
		nmax := adm.NMax(tmpl)
		total := p * nmax

		strands := make([]*strand.Strand, total)
		for j := range strands {
			strands[j] = r.recordOn(j%p, (j/p)*stripeCyl, 300, seedBase+int64(7000+100*p+j))
		}

		// Admission math on a gate manager that runs no rounds while
		// admitting (NaiveJump skips the stepwise transition rounds):
		// all p·n_max streams pass their per-spindle Eq. 18, and one
		// more on a saturated spindle is rejected.
		gate := msm.New(r.arr, adm)
		gate.SetPolicy(msm.NaiveJump)
		admitted := 0
		for _, s := range strands {
			if _, _, err := gate.AdmitPlay(r.plan(s)); err != nil {
				break
			}
			admitted++
		}
		extra := r.recordOn(0, nmax*stripeCyl, 300, seedBase+int64(7900+p))
		if _, _, err := gate.AdmitPlay(r.plan(extra)); !errors.Is(err, msm.ErrAdmissionRejected) {
			panic(fmt.Sprintf("experiments: EXP-STRIPE p=%d: stream %d should exceed the spindle's n_max, got %v", p, total, err))
		}

		// Service run on a stepwise manager: parallel sub-rounds join
		// every round, every stream completes violation-free.
		mgr := msm.New(r.arr, adm)
		ids := make([]msm.RequestID, 0, total)
		for j, s := range strands {
			id, _, err := mgr.AdmitPlay(r.plan(s))
			if err != nil {
				panic(fmt.Sprintf("experiments: EXP-STRIPE p=%d stream %d: %v", p, j, err))
			}
			ids = append(ids, id)
		}
		mgr.RunUntilDone()
		completed, late := tally(mgr, ids)
		st := mgr.Stats()
		res.AddRow(fmt.Sprintf("p=%d", p), fmt.Sprint(nmax), fmt.Sprint(total),
			fmt.Sprint(admitted), fmt.Sprint(completed), fmt.Sprint(late),
			fmt.Sprint(st.DegradedBlocks), fmt.Sprint(st.FaultStops))
		if p == 1 {
			base = admitted
		} else if base > 0 {
			res.Note("p=%d admits %.2f× the single-spindle population (ideal %d×)", p, float64(admitted)/float64(base), p)
		}
	}

	// Chaos row: spindle 1 of four fails every read. Its streams ride
	// the degradation ladder (zero-fill, then an escalation stop); the
	// other spindles' sub-rounds never see the faults.
	const sick = 1
	r := newStripeRig(4, sick, fault.Scenario{Seed: 42 + seedBase, ReadErrorRate: 1})
	adm := continuity.AdmissionFor(r.dev)
	mgr := msm.New(r.arr, adm)
	ids := make([]msm.RequestID, 4)
	for sp := 0; sp < 4; sp++ {
		s := r.recordOn(sp, 0, 150, seedBase+int64(8400+sp))
		var err error
		if ids[sp], _, err = mgr.AdmitPlay(r.plan(s)); err != nil {
			panic(err)
		}
	}
	mgr.RunUntilDone()
	healthyLate, healthyDeg, healthyDone := 0, 0, 0
	for sp, id := range ids {
		if sp == sick {
			continue
		}
		pr, err := mgr.Progress(id)
		if err != nil {
			panic(err)
		}
		healthyDeg += pr.DegradedBlocks
		healthyLate += pr.Violations
		if pr.Done && pr.BlocksServed == pr.BlocksTotal {
			healthyDone++
		}
	}
	st := mgr.Stats()
	completed, _ := tally(mgr, ids)
	res.AddRow("p=4, spindle 1 dead", "1/sp", "4", "4", fmt.Sprint(completed),
		fmt.Sprint(healthyLate), fmt.Sprint(st.DegradedBlocks), fmt.Sprint(st.FaultStops))
	if healthyDeg != 0 || healthyDone != 3 {
		panic(fmt.Sprintf("experiments: EXP-STRIPE chaos: healthy spindles disturbed (degraded=%d done=%d/3)", healthyDeg, healthyDone))
	}

	res.Note("array of p spindles, cylinder-group striping (%d-cylinder groups); each round runs one C-SCAN sub-round per spindle concurrently and joins before the round closes", stripeCyl)
	res.Note("admission charges each stream to the spindle holding its blocks, so the aggregate bound is p·n_max (Eq. 17 per spindle); the (p·n_max+1)-th stream on a full spindle is rejected")
	res.Note("chaos row: every read on spindle 1 fails — its stream zero-fills then stops, while the 3 healthy spindles' streams complete with zero violations and zero degraded blocks")
	res.Note("extension beyond the paper: Rangan & Vin model a single disk; striping generalises merging (§4) across spindles the way their §6 remarks anticipate for disk arrays")
	return res
}

// tally counts completed streams and late violations across ids.
func tally(mgr *msm.Manager, ids []msm.RequestID) (completed, late int) {
	for _, id := range ids {
		pr, err := mgr.Progress(id)
		if err != nil {
			panic(err)
		}
		if pr.Done && pr.BlocksServed == pr.BlocksTotal {
			completed++
		}
		v, err := mgr.Violations(id)
		if err != nil {
			panic(err)
		}
		for _, viol := range v {
			if viol.Cause == msm.CauseLate {
				late++
			}
		}
	}
	return completed, late
}
