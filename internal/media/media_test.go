package media

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestVideoSourceDeterministic(t *testing.T) {
	a := NewVideoSource(10, 1000, 30, 42)
	b := NewVideoSource(10, 1000, 30, 42)
	for {
		ua, oka := a.Next()
		ub, okb := b.Next()
		if oka != okb {
			t.Fatal("sources diverged in length")
		}
		if !oka {
			break
		}
		if ua.Seq != ub.Seq || !bytes.Equal(ua.Payload, ub.Payload) {
			t.Fatalf("frame %d differs between identical sources", ua.Seq)
		}
	}
}

func TestVideoSourceExhausts(t *testing.T) {
	s := NewVideoSource(3, 64, 30, 1)
	n := 0
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("source yielded %d frames, want 3", n)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded another frame")
	}
}

func TestFramePayloadRegeneratesExactly(t *testing.T) {
	s := NewVideoSource(5, 256, 30, 77)
	for {
		u, ok := s.Next()
		if !ok {
			break
		}
		regen := FramePayload(77, u.Seq, 256)
		if !bytes.Equal(u.Payload, regen) {
			t.Fatalf("frame %d cannot be regenerated", u.Seq)
		}
		if err := ValidateFrameSeq(u.Payload, u.Seq); err != nil {
			t.Fatal(err)
		}
		if err := ValidateFrameSeq(u.Payload, u.Seq+1); err == nil {
			t.Fatal("wrong stamp accepted")
		}
	}
}

func TestValidateFrameSeqShortPayload(t *testing.T) {
	if err := ValidateFrameSeq([]byte{1, 2}, 0); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestSilenceDetectorSeparatesSpeechFromSilence(t *testing.T) {
	det := DefaultSilenceDetector()
	src := NewAudioSource(200, 400, 10, 0.5, 10, 3)
	misclassified := 0
	for {
		u, ok := src.Next()
		if !ok {
			break
		}
		if det.Silent(u.Payload) != src.UnitSilent(u.Seq) {
			misclassified++
		}
	}
	if misclassified != 0 {
		t.Fatalf("%d units misclassified", misclassified)
	}
	if !det.Silent(nil) {
		t.Fatal("empty payload should read as silent")
	}
}

func TestAudioSilenceFractionTracksParameter(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		src := NewAudioSource(1000, 80, 10, frac, 10, 9)
		silent := 0
		for seq := uint64(0); seq < 1000; seq++ {
			if src.UnitSilent(seq) {
				silent++
			}
		}
		got := float64(silent) / 1000
		if got < frac-0.08 || got > frac+0.08 {
			t.Fatalf("silence fraction %.2f for parameter %.2f", got, frac)
		}
	}
}

func TestAudioSourceRates(t *testing.T) {
	src := NewAudioSource(10, 800, 10, 0, 1, 4)
	if src.Rate() != 10 || src.UnitBytes() != 800 {
		t.Fatalf("rate %g unit %d", src.Rate(), src.UnitBytes())
	}
	u, ok := src.Next()
	if !ok || len(u.Payload) != 800 {
		t.Fatal("bad first unit")
	}
}

func TestSliceSourceReplays(t *testing.T) {
	units := []Unit{
		{Seq: 0, Payload: []byte{1, 2}},
		{Seq: 1, Payload: []byte{3, 4}},
	}
	s := NewSliceSource(units, 30, 2)
	if s.Rate() != 30 || s.UnitBytes() != 2 {
		t.Fatal("metadata")
	}
	u0, ok := s.Next()
	if !ok || u0.Seq != 0 {
		t.Fatal("first unit")
	}
	u1, ok := s.Next()
	if !ok || !bytes.Equal(u1.Payload, []byte{3, 4}) {
		t.Fatal("second unit")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("slice source over-delivered")
	}
}

// Property: every frame payload stamps its own sequence number.
func TestFrameStampQuick(t *testing.T) {
	f := func(seed int64, rawSeq uint16, rawSize uint8) bool {
		size := 8 + int(rawSize)
		p := FramePayload(seed, uint64(rawSeq), size)
		return len(p) == size && ValidateFrameSeq(p, uint64(rawSeq)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: silence bursts are exactly burstUnits long at the start of
// each cycle.
func TestSilenceBurstShapeQuick(t *testing.T) {
	f := func(rawBurst uint8) bool {
		burst := int(rawBurst)%20 + 1
		src := NewAudioSource(1, 8, 10, 0.5, burst, 1)
		// Unit 0 must be silent (cycle start), unit burst must not.
		return src.UnitSilent(0) && !src.UnitSilent(uint64(burst))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
