// Package media provides the synthetic media devices of the testbed:
// deterministic video frame and audio sample sources standing in for
// the paper's UVC digitization/compression hardware, silence detection
// and elimination for audio (§4), and display-side sink devices with
// internal buffers consuming blocks at their real-time rates.
package media

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Unit is one media unit: a video frame or a run of audio samples
// produced together. Payload length is the unit size in bytes.
type Unit struct {
	// Seq is the unit's sequence number within its stream.
	Seq uint64
	// Payload is the digitized (and, for video, compressed) data.
	Payload []byte
}

// Source produces a stream of media units at a fixed rate; it is the
// file-system-facing face of a capture device.
type Source interface {
	// Next returns the next unit, or false when the stream ends.
	Next() (Unit, bool)
	// Rate is the recording rate in units/second.
	Rate() float64
	// UnitBytes is the nominal size of one unit in bytes; for
	// variable-rate sources it is the peak size.
	UnitBytes() int
}

// VariableSource marks a source whose units vary in size
// (variable-rate compression); the file system stores such strands in
// self-describing variable blocks.
type VariableSource interface {
	Source
	// Variable reports whether unit sizes vary.
	Variable() bool
}

// IsVariable reports whether the source declares variable unit sizes.
func IsVariable(s Source) bool {
	v, ok := s.(VariableSource)
	return ok && v.Variable()
}

// VideoSource generates deterministic pseudo-compressed NTSC-class
// frames. Every byte is PRNG output under a fixed seed, so recorded
// data can be re-derived and verified after playback.
type VideoSource struct {
	rate      float64
	frameSize int
	frames    int
	next      uint64
	seed      int64
}

// NewVideoSource creates a source of `frames` frames of frameSize
// bytes at the given rate. Seed fixes the payload contents.
func NewVideoSource(frames, frameSize int, rate float64, seed int64) *VideoSource {
	return &VideoSource{rate: rate, frameSize: frameSize, frames: frames, seed: seed}
}

// Next implements Source.
func (v *VideoSource) Next() (Unit, bool) {
	if v.next >= uint64(v.frames) {
		return Unit{}, false
	}
	u := Unit{Seq: v.next, Payload: FramePayload(v.seed, v.next, v.frameSize)}
	v.next++
	return u, true
}

// Rate implements Source.
func (v *VideoSource) Rate() float64 { return v.rate }

// UnitBytes implements Source.
func (v *VideoSource) UnitBytes() int { return v.frameSize }

// FramePayload deterministically regenerates frame seq's payload so
// tests can verify retrieved data without retaining the original.
func FramePayload(seed int64, seq uint64, size int) []byte {
	//lint:ignore allocpath each captured payload is retained by the strand writer until its block flushes
	buf := make([]byte, size)
	rng := rand.New(rand.NewSource(seed ^ int64(seq*0x9e3779b97f4a7c15)))
	// Stamp the sequence number, then fill with PRNG bytes.
	if size >= 8 {
		binary.LittleEndian.PutUint64(buf, seq)
	}
	for i := 8; i < size; i++ {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}

// AudioSource generates 8-bit audio samples grouped into units of
// unitSamples samples, alternating talk spurts and silences so that
// silence elimination has something to eliminate. Amplitude during
// speech is a deterministic sinusoid plus PRNG noise; during silence
// it is low-level noise under the detection threshold.
//
// Rate is in units/second (a unit being one group of unitSamples
// samples): a telephone-quality stream of 8000 samples/s packaged in
// 800-sample units has rate 10.
type AudioSource struct {
	rate        float64 // units per second
	unitSamples int
	totalUnits  int
	next        uint64
	seed        int64
	// silenceFraction is the fraction of units that are silent.
	silenceFraction float64
	// burstUnits is the length of each silence burst in units.
	burstUnits int
}

// NewAudioSource creates a source of totalUnits units, each holding
// unitSamples samples, produced at rate units/second, with roughly
// silenceFraction of the stream silent in bursts of burstUnits units.
func NewAudioSource(totalUnits, unitSamples int, rate float64, silenceFraction float64, burstUnits int, seed int64) *AudioSource {
	if burstUnits < 1 {
		burstUnits = 1
	}
	if silenceFraction < 0 {
		silenceFraction = 0
	}
	if silenceFraction > 1 {
		silenceFraction = 1
	}
	return &AudioSource{
		rate:            rate,
		unitSamples:     unitSamples,
		totalUnits:      totalUnits,
		seed:            seed,
		silenceFraction: silenceFraction,
		burstUnits:      burstUnits,
	}
}

// Next implements Source.
func (a *AudioSource) Next() (Unit, bool) {
	if a.next >= uint64(a.totalUnits) {
		return Unit{}, false
	}
	u := Unit{Seq: a.next, Payload: a.payload(a.next)}
	a.next++
	return u, true
}

// Rate implements Source (units/second).
func (a *AudioSource) Rate() float64 { return a.rate }

// UnitBytes implements Source.
func (a *AudioSource) UnitBytes() int { return a.unitSamples }

// UnitSilent reports whether unit seq falls in a silence burst, by
// construction: bursts of burstUnits silent units recur with a period
// chosen so the long-run silent fraction matches silenceFraction.
func (a *AudioSource) UnitSilent(seq uint64) bool {
	if a.silenceFraction <= 0 {
		return false
	}
	if a.silenceFraction >= 1 {
		return true
	}
	cycle := uint64(math.Round(float64(a.burstUnits) / a.silenceFraction))
	if cycle <= uint64(a.burstUnits) {
		return true
	}
	return seq%cycle < uint64(a.burstUnits)
}

func (a *AudioSource) payload(seq uint64) []byte {
	//lint:ignore allocpath each captured payload is retained by the strand writer until its block flushes
	buf := make([]byte, a.unitSamples)
	rng := rand.New(rand.NewSource(a.seed ^ int64(seq*0x9e3779b97f4a7c15)))
	silent := a.UnitSilent(seq)
	sampleRate := a.rate * float64(a.unitSamples)
	for i := range buf {
		if silent {
			// Low-level noise centered at the 8-bit midpoint 128.
			buf[i] = byte(128 + rng.Intn(5) - 2)
		} else {
			t := float64(seq)*float64(a.unitSamples) + float64(i)
			s := 100 * math.Sin(2*math.Pi*440*t/sampleRate)
			n := float64(rng.Intn(21) - 10)
			buf[i] = byte(128 + int(s+n))
		}
	}
	return buf
}

// SilenceDetector implements §4's silence detection: "if the average
// energy level over a block falls below a threshold, no audio data is
// stored for that duration".
type SilenceDetector struct {
	// Threshold is the average-energy threshold; 8-bit samples are
	// centered at 128 and energy is the mean squared deviation.
	Threshold float64
}

// DefaultSilenceDetector uses a threshold separating the source's
// low-level noise (|dev| ≤ 2, energy ≤ ~4) from speech (energy ≫ 100).
func DefaultSilenceDetector() SilenceDetector { return SilenceDetector{Threshold: 25} }

// Silent reports whether the average energy of the samples falls below
// the threshold.
func (sd SilenceDetector) Silent(samples []byte) bool {
	if len(samples) == 0 {
		return true
	}
	var e float64
	for _, s := range samples {
		d := float64(s) - 128
		e += d * d
	}
	return e/float64(len(samples)) < sd.Threshold
}

// SliceSource replays a pre-built unit sequence; editing tests and the
// network server use it to feed received data into RECORD.
type SliceSource struct {
	units []Unit
	rate  float64
	size  int
	next  int
}

// NewSliceSource wraps the units as a Source.
func NewSliceSource(units []Unit, rate float64, unitBytes int) *SliceSource {
	return &SliceSource{units: units, rate: rate, size: unitBytes}
}

// Next implements Source.
func (s *SliceSource) Next() (Unit, bool) {
	if s.next >= len(s.units) {
		return Unit{}, false
	}
	u := s.units[s.next]
	s.next++
	return u, true
}

// Rate implements Source.
func (s *SliceSource) Rate() float64 { return s.rate }

// UnitBytes implements Source.
func (s *SliceSource) UnitBytes() int { return s.size }

// ValidateFrameSeq checks that a retrieved video payload carries the
// expected stamped sequence number.
func ValidateFrameSeq(payload []byte, want uint64) error {
	if len(payload) < 8 {
		return fmt.Errorf("media: payload %d bytes too short for a frame stamp", len(payload))
	}
	got := binary.LittleEndian.Uint64(payload)
	if got != want {
		return fmt.Errorf("media: frame stamp %d, want %d", got, want)
	}
	return nil
}
