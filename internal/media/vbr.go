package media

import (
	"encoding/binary"
	"math/rand"
)

// VBRVideoSource generates variable-rate compressed video (§6.2 of the
// paper: "variable rate compression of video (analogous to silence
// elimination in audio), such as differencing between frames, can
// result in varying but smaller sizes of video frames"). Frames follow
// a GOP pattern: every GOP-th frame is an intra frame of peak size,
// the rest are difference frames around a smaller mean, with
// deterministic PRNG jitter.
type VBRVideoSource struct {
	frames    int
	peakBytes int
	diffBytes int
	gop       int
	rate      float64
	seed      int64
	next      uint64
}

// NewVBRVideoSource creates a VBR source: `frames` frames at `rate`
// frames/second, intra frames of peakBytes every gop frames,
// difference frames averaging diffBytes in between.
func NewVBRVideoSource(frames, peakBytes, diffBytes, gop int, rate float64, seed int64) *VBRVideoSource {
	if gop < 1 {
		gop = 1
	}
	return &VBRVideoSource{
		frames:    frames,
		peakBytes: peakBytes,
		diffBytes: diffBytes,
		gop:       gop,
		rate:      rate,
		seed:      seed,
	}
}

// Next implements Source.
func (v *VBRVideoSource) Next() (Unit, bool) {
	if v.next >= uint64(v.frames) {
		return Unit{}, false
	}
	u := Unit{Seq: v.next, Payload: VBRFramePayload(v.seed, v.next, v.peakBytes, v.diffBytes, v.gop)}
	v.next++
	return u, true
}

// Rate implements Source.
func (v *VBRVideoSource) Rate() float64 { return v.rate }

// UnitBytes implements Source: the peak frame size (what fixed-rate
// provisioning would have to assume for every frame).
func (v *VBRVideoSource) UnitBytes() int { return v.peakBytes }

// Variable implements VariableSource.
func (v *VBRVideoSource) Variable() bool { return true }

// AvgBytes is the long-run mean frame size under the GOP pattern.
func (v *VBRVideoSource) AvgBytes() float64 {
	return (float64(v.peakBytes) + float64(v.gop-1)*float64(v.diffBytes)) / float64(v.gop)
}

// VBRFrameSize is the size of frame seq under the GOP pattern, without
// generating the payload. Deterministic jitter of ±12.5% applies to
// difference frames.
func VBRFrameSize(seed int64, seq uint64, peakBytes, diffBytes, gop int) int {
	if gop < 1 {
		gop = 1
	}
	if seq%uint64(gop) == 0 {
		return peakBytes
	}
	rng := rand.New(rand.NewSource(seed ^ int64(seq*0x9e3779b97f4a7c15)))
	jitter := diffBytes / 8
	size := diffBytes
	if jitter > 0 {
		size += rng.Intn(2*jitter+1) - jitter
	}
	if size < 9 {
		size = 9 // room for the sequence stamp
	}
	if size > peakBytes {
		size = peakBytes
	}
	return size
}

// VBRFramePayload deterministically regenerates frame seq's payload.
func VBRFramePayload(seed int64, seq uint64, peakBytes, diffBytes, gop int) []byte {
	size := VBRFrameSize(seed, seq, peakBytes, diffBytes, gop)
	//lint:ignore allocpath each captured payload is retained by the strand writer until its block flushes
	buf := make([]byte, size)
	binary.LittleEndian.PutUint64(buf, seq)
	rng := rand.New(rand.NewSource(^seed ^ int64(seq*0x9e3779b97f4a7c15)))
	for i := 8; i < size; i++ {
		buf[i] = byte(rng.Intn(256))
	}
	return buf
}
