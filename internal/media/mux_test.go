package media

import (
	"bytes"
	"testing"
)

func TestMuxSplitRoundTrip(t *testing.T) {
	// 30 fps video, 15 audio units/s of 800 B → 400 B audio/frame.
	v := NewVideoSource(30, 1000, 30, 5)
	a := NewAudioSource(15, 800, 15, 0, 1, 6)
	mux, err := NewMuxAVSource(v, a)
	if err != nil {
		t.Fatal(err)
	}
	if mux.AudioBytesPerFrame() != 400 {
		t.Fatalf("audio share %d", mux.AudioBytesPerFrame())
	}
	if mux.UnitBytes() != 4+1000+400 {
		t.Fatalf("unit bytes %d", mux.UnitBytes())
	}
	if mux.Rate() != 30 {
		t.Fatalf("rate %g", mux.Rate())
	}

	// Reconstruct the audio stream and verify both media.
	refAudio := NewAudioSource(15, 800, 15, 0, 1, 6)
	var wantAudio []byte
	for {
		u, ok := refAudio.Next()
		if !ok {
			break
		}
		wantAudio = append(wantAudio, u.Payload...)
	}
	var gotAudio []byte
	n := 0
	for {
		u, ok := mux.Next()
		if !ok {
			break
		}
		frame, audio, err := SplitAV(u.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, FramePayload(5, uint64(n), 1000)) {
			t.Fatalf("frame %d corrupted through mux", n)
		}
		gotAudio = append(gotAudio, audio...)
		n++
	}
	if n != 30 {
		t.Fatalf("%d composite units", n)
	}
	if !bytes.Equal(gotAudio, wantAudio) {
		t.Fatal("audio stream corrupted through mux")
	}
}

func TestMuxPadsWhenAudioRunsDry(t *testing.T) {
	v := NewVideoSource(30, 100, 30, 7)
	a := NewAudioSource(5, 800, 15, 0, 1, 8) // only 1/3 of the audio needed
	mux, err := NewMuxAVSource(v, a)
	if err != nil {
		t.Fatal(err)
	}
	units := 0
	for {
		u, ok := mux.Next()
		if !ok {
			break
		}
		_, audio, err := SplitAV(u.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(audio) != 400 {
			t.Fatalf("unit %d audio share %d", units, len(audio))
		}
		units++
	}
	if units != 30 {
		t.Fatalf("%d units; video length governs the stream", units)
	}
}

func TestMuxRejectsNonIntegralSplit(t *testing.T) {
	v := NewVideoSource(30, 100, 30, 1)
	a := NewAudioSource(10, 800, 10, 0, 1, 2) // 8000 B/s over 30 fps
	if _, err := NewMuxAVSource(v, a); err == nil {
		t.Fatal("non-integral audio share accepted")
	}
	if _, err := NewMuxAVSource(nil, a); err == nil {
		t.Fatal("nil video accepted")
	}
}

func TestSplitAVErrors(t *testing.T) {
	if _, _, err := SplitAV([]byte{1, 2}); err == nil {
		t.Fatal("headerless unit accepted")
	}
	if _, _, err := SplitAV([]byte{0xff, 0xff, 0, 0, 1}); err == nil {
		t.Fatal("overlong video claim accepted")
	}
}
