package media

import (
	"encoding/binary"
	"fmt"
)

// MuxAVSource interleaves a video source and an audio source into
// composite units for heterogeneous-block storage (§3.3.3: "multiple
// media being recorded are stored within the same block, which may
// entail additional processing for combining these media during
// storage, and for separating them during retrieval. The advantage of
// this scheme is that it provides implicit inter-media
// synchronization.").
//
// Each composite unit carries one video frame followed by that frame's
// share of audio samples; both media ride one strand, one index, and
// one disk access per block.
type MuxAVSource struct {
	video Source
	audio Source
	// audioPerFrame is the number of audio payload bytes packed with
	// each frame.
	audioPerFrame int
	pending       []byte // buffered audio bytes not yet emitted
	next          uint64
}

// NewMuxAVSource combines the sources. The audio source's byte rate is
// divided evenly across video frames; rates must divide cleanly so
// every composite unit has the same size (fixed-size units keep
// heterogeneous blocks simple, as in the paper's n = 1 analysis).
func NewMuxAVSource(video, audio Source) (*MuxAVSource, error) {
	if video == nil || audio == nil {
		return nil, fmt.Errorf("media: mux needs both media")
	}
	audioBytesPerSec := audio.Rate() * float64(audio.UnitBytes())
	perFrame := audioBytesPerSec / video.Rate()
	if perFrame != float64(int(perFrame)) || perFrame <= 0 {
		return nil, fmt.Errorf("media: audio %g B/s does not divide evenly across %g frames/s", audioBytesPerSec, video.Rate())
	}
	return &MuxAVSource{video: video, audio: audio, audioPerFrame: int(perFrame)}, nil
}

// AudioBytesPerFrame reports the audio share of each composite unit.
func (m *MuxAVSource) AudioBytesPerFrame() int { return m.audioPerFrame }

// VideoBytes reports the video share of each composite unit.
func (m *MuxAVSource) VideoBytes() int { return m.video.UnitBytes() }

// Next implements Source: the next composite unit, combining the media
// at the input as the paper's heterogeneous scheme requires.
func (m *MuxAVSource) Next() (Unit, bool) {
	vu, ok := m.video.Next()
	if !ok {
		return Unit{}, false
	}
	for len(m.pending) < m.audioPerFrame {
		au, ok := m.audio.Next()
		if !ok {
			// Audio ran dry: pad with silence so the composite
			// stream stays fixed-size.
			//lint:ignore allocpath audio padding happens once, when the audio source runs dry
			pad := make([]byte, m.audioPerFrame-len(m.pending))
			for i := range pad {
				pad[i] = 128
			}
			//lint:ignore allocpath the pending audio backlog stays under one frame share once warm
			m.pending = append(m.pending, pad...)
			break
		}
		//lint:ignore allocpath the pending audio backlog stays under one frame share once warm
		m.pending = append(m.pending, au.Payload...)
	}
	// Self-describing layout: [u32 video length][frame][audio], so
	// retrieval can separate the media without out-of-band metadata.
	//lint:ignore allocpath each muxed payload is retained by the strand writer until its block flushes
	payload := make([]byte, 0, 4+m.video.UnitBytes()+m.audioPerFrame)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(vu.Payload)))
	//lint:ignore allocpath fills the payload sized above; these appends never grow it
	payload = append(payload, hdr[:]...)
	//lint:ignore allocpath fills the payload sized above; these appends never grow it
	payload = append(payload, vu.Payload...)
	//lint:ignore allocpath fills the payload sized above; these appends never grow it
	payload = append(payload, m.pending[:m.audioPerFrame]...)
	m.pending = m.pending[m.audioPerFrame:]
	u := Unit{Seq: m.next, Payload: payload}
	m.next++
	return u, true
}

// Rate implements Source: composite units flow at the video frame
// rate.
func (m *MuxAVSource) Rate() float64 { return m.video.Rate() }

// UnitBytes implements Source (4-byte split header + frame + audio
// share).
func (m *MuxAVSource) UnitBytes() int { return 4 + m.video.UnitBytes() + m.audioPerFrame }

// SplitAV separates a composite unit back into its frame and audio
// share — the "separating them during retrieval" step.
func SplitAV(payload []byte) (frame, audio []byte, err error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("media: composite unit of %d bytes has no split header", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if 4+n > len(payload) {
		return nil, nil, fmt.Errorf("media: composite unit claims %d video bytes of %d", n, len(payload)-4)
	}
	return payload[4 : 4+n], payload[4+n:], nil
}
