// Package obs is the observability backbone of mmfs: a stdlib-only
// metrics registry (counters, gauges, fixed-bucket histograms) plus a
// ring-buffer trace of storage-manager service rounds. The paper's
// continuity guarantees (Eqs. 15–18) are only as good as our ability
// to *see* each service round — per-round disk busy time, admission
// accept/reject decisions, cache interval adoptions, and any
// continuity violations — so every layer (msm, disk, cache, server)
// reports through one Registry that the wire METRICS op, the mmfsd
// -metrics-addr HTTP listener, and the benchmark harness all snapshot.
//
// All metric types are safe for concurrent use: the simulation layers
// mutate them under the server's lock while HTTP scrapes read them
// concurrently. Counters and gauges are single atomics; histograms use
// one atomic per bucket (observations are monotonic, so a scrape may
// see a bucket mid-update but never a torn value).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default histogram bounds, in seconds, for
// simulated-disk access times: the model's reads span ~2 ms (minimum
// seek) to ~40 ms (worst-case seek + rotation + transfer), so the
// bounds bracket that range with headroom for multi-block transfers.
var LatencyBuckets = []float64{
	0.001, 0.002, 0.005, 0.010, 0.015, 0.020, 0.030, 0.050, 0.075, 0.100,
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an int64 metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets chosen at
// registration. Buckets are cumulative in snapshots (Prometheus
// convention): bucket i counts observations ≤ Uppers[i], and an
// implicit +Inf bucket equals Count.
type Histogram struct {
	uppers []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative) counts
	inf    atomic.Uint64   // observations above the last upper bound
	sum    atomic.Uint64   // float64 bits, CAS-updated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first upper bound ≥ v.
	i := sort.SearchFloat64s(h.uppers, v)
	if i < len(h.uppers) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	//lint:ignore boundedwork CAS retry: each iteration either lands the swap or another writer made progress
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Uppers returns the configured bucket upper bounds.
func (h *Histogram) Uppers() []float64 { return append([]float64(nil), h.uppers...) }

// Count is the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum is the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts, total count, and sum.
func (h *Histogram) snapshot() ([]uint64, uint64, float64) {
	cum := make([]uint64, len(h.uppers))
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
		cum[i] = n
	}
	n += h.inf.Load()
	return cum, n, h.Sum()
}

// Registry holds named metrics. Names follow the Prometheus data
// model and may carry an inline label set, e.g.
// `mmfs_requests_total{op="Play"}`; the registry treats the full
// string as the series identity and groups series by base name when
// rendering exposition TYPE/HELP lines.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (uppers must be sorted ascending;
// later calls may pass nil to fetch the existing histogram).
func (r *Registry) Histogram(name string, uppers []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if !sort.Float64sAreSorted(uppers) {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending: %v", name, uppers))
		}
		h = &Histogram{
			uppers: append([]float64(nil), uppers...),
			counts: make([]atomic.Uint64, len(uppers)),
		}
		r.histograms[name] = h
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram in a snapshot. Buckets are
// cumulative: Buckets[i] counts observations ≤ Uppers[i].
type HistogramValue struct {
	Name    string    `json:"name"`
	Uppers  []float64 `json:"uppers"`
	Buckets []uint64  `json:"buckets"`
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every registered metric, sorted
// by name. It is the payload of the wire METRICS op and the JSON the
// benchmark harness embeds.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Counter finds a counter's value in the snapshot (0, false if absent).
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge finds a gauge's value in the snapshot (0, false if absent).
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// sortedKeys returns m's keys in ascending order, so the caller can
// index the map deterministically instead of ranging over it.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot copies every metric. Each family is walked in sorted key
// order, so two snapshots of the same state are identical element for
// element and the /metrics rendering is byte-stable.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		cum, n, sum := h.snapshot()
		s.Histograms = append(s.Histograms, HistogramValue{
			Name: name, Uppers: h.Uppers(), Buckets: cum, Count: n, Sum: sum,
		})
	}
	return s
}

// baseName strips an inline label set from a series name.
func baseName(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[:i]
	}
	return series
}

// labels returns the inline label set of a series name including the
// braces, or "".
func labels(series string) string {
	if i := strings.IndexByte(series, '{'); i >= 0 {
		return series[i:]
	}
	return ""
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). Series sharing a base name emit
// one TYPE line.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastType := ""
	emitType := func(base, typ string) error {
		if base == lastType {
			return nil
		}
		lastType = base
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
		return err
	}
	for _, c := range s.Counters {
		if err := emitType(baseName(c.Name), "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := emitType(baseName(g.Name), "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		base := baseName(h.Name)
		if err := emitType(base, "histogram"); err != nil {
			return err
		}
		lbl := labels(h.Name)
		for i, ub := range h.Uppers {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base+"_bucket", mergeLabel(lbl, fmt.Sprintf("le=%q", formatUpper(ub))), h.Buckets[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", base+"_bucket", mergeLabel(lbl, `le="+Inf"`), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %g\n", base+"_sum", lbl, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", base+"_count", lbl, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatUpper renders a bucket bound the way Prometheus clients do.
func formatUpper(v float64) string { return fmt.Sprintf("%g", v) }

// mergeLabel splices an extra label pair into an existing inline label
// set ("" → {pair}).
func mergeLabel(lbl, pair string) string {
	if lbl == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(lbl, "}") + "," + pair + "}"
}
