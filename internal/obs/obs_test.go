package obs

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mmfs_test_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("mmfs_test_total") != c {
		t.Fatal("Counter did not return the registered instance")
	}
	g := r.Gauge("mmfs_test_gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

// TestHistogramBucketBoundaries pins the boundary semantics: an
// observation equal to an upper bound lands in that bucket (le =
// less-or-equal), one just above lands in the next, and values past
// the last bound only appear in +Inf (the snapshot Count).
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mmfs_test_seconds", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{
		0.0005,  // → bucket 0
		0.001,   // boundary → bucket 0
		0.0011,  // → bucket 1
		0.01,    // boundary → bucket 1
		0.1,     // boundary → bucket 2
		0.5, 99, // → +Inf only
	} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	cum, n, sum := h.snapshot()
	want := []uint64{2, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d (le=%g) = %d, want %d", i, h.uppers[i], cum[i], w)
		}
	}
	if n != 7 {
		t.Fatalf("snapshot count = %d, want 7", n)
	}
	wantSum := 0.0005 + 0.001 + 0.0011 + 0.01 + 0.1 + 0.5 + 99
	if diff := sum - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %g, want %g", sum, wantSum)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets did not panic")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 0.5})
}

func TestSnapshotLookupAndSorting(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("z_gauge").Set(-3)
	s := r.Snapshot()
	if s.Counters[0].Name != "a_total" || s.Counters[1].Name != "b_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.Counter("b_total"); !ok || v != 2 {
		t.Fatalf("Counter lookup = %d,%v", v, ok)
	}
	if v, ok := s.Gauge("z_gauge"); !ok || v != -3 {
		t.Fatalf("Gauge lookup = %d,%v", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Fatal("missing counter reported present")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`mmfs_requests_total{op="Play"}`).Add(3)
	r.Counter(`mmfs_requests_total{op="Stats"}`).Add(1)
	r.Gauge("mmfs_k").Set(4)
	h := r.Histogram("mmfs_disk_read_seconds", []float64{0.01, 0.05})
	h.Observe(0.004)
	h.Observe(0.04)
	h.Observe(1.5)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mmfs_requests_total counter",
		`mmfs_requests_total{op="Play"} 3`,
		`mmfs_requests_total{op="Stats"} 1`,
		"# TYPE mmfs_k gauge",
		"mmfs_k 4",
		"# TYPE mmfs_disk_read_seconds histogram",
		`mmfs_disk_read_seconds_bucket{le="0.01"} 1`,
		`mmfs_disk_read_seconds_bucket{le="0.05"} 2`,
		`mmfs_disk_read_seconds_bucket{le="+Inf"} 3`,
		"mmfs_disk_read_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base name, even with two labeled series.
	if strings.Count(out, "# TYPE mmfs_requests_total counter") != 1 {
		t.Fatalf("duplicated TYPE line:\n%s", out)
	}
}

func TestTraceRingWraparound(t *testing.T) {
	ring := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		ring.Append(RoundTrace{Round: uint64(i)})
	}
	if ring.Len() != 4 {
		t.Fatalf("len = %d, want 4", ring.Len())
	}
	if ring.Total() != 6 {
		t.Fatalf("total = %d, want 6", ring.Total())
	}
	got := ring.Snapshot()
	for i, want := range []uint64{3, 4, 5, 6} {
		if got[i].Round != want {
			t.Fatalf("snapshot[%d].Round = %d, want %d (oldest first)", i, got[i].Round, want)
		}
	}
}

func TestHandlerServesMetricsAndTrace(t *testing.T) {
	r := NewRegistry()
	r.Counter("mmfs_rounds_total").Add(9)
	ring := NewTraceRing(8)
	ring.Append(RoundTrace{Round: 1, K: 2, BlocksRead: 5, DiskBusyNs: 1e6})
	srv := httptest.NewServer(Handler(r, ring))
	defer srv.Close()

	get := func(path string) string {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		data, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	body := get("/metrics")
	if !strings.Contains(body, "mmfs_rounds_total 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	body = get("/trace")
	if !strings.Contains(body, `"round": 1`) || !strings.Contains(body, `"disk_busy_ns": 1000000`) {
		t.Fatalf("/trace missing round record:\n%s", body)
	}
}

// TestConcurrentAccess hammers every metric type from many goroutines
// while snapshots run; the -race CI subset executes this with the race
// detector to prove the registry is scrape-safe.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	ring := NewTraceRing(64)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("mmfs_conc_total")
			g := r.Gauge("mmfs_conc_gauge")
			h := r.Histogram("mmfs_conc_seconds", []float64{0.001, 0.01, 0.1, 1})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(i%100) / 50)
				ring.Append(RoundTrace{Round: uint64(i)})
				// Interleave labeled-series creation with updates.
				r.Counter(fmt.Sprintf(`mmfs_conc_labeled_total{w="%d"}`, w)).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			var b strings.Builder
			if err := s.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
			ring.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got, _ := r.Snapshot().Counter("mmfs_conc_total"); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("mmfs_conc_seconds", nil).Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
