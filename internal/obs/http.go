package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry and trace ring over HTTP:
//
//	GET /metrics  Prometheus text exposition of every metric
//	GET /trace    JSON array of the retained service rounds, oldest first
//
// ring may be nil; /trace then serves an empty array. mmfsd mounts the
// handler on its -metrics-addr listener.
func Handler(reg *Registry, ring *TraceRing) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.Snapshot().WritePrometheus(w); err != nil {
			// The connection is gone; nothing useful left to do.
			return
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var rounds []RoundTrace
		if ring != nil {
			rounds = ring.Snapshot()
		}
		if rounds == nil {
			rounds = []RoundTrace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rounds); err != nil {
			return
		}
	})
	return mux
}
