package obs

import "sync"

// RoundTrace is the record of one storage-manager service round: what
// the round loop did between two successive returns of RunRound. Disk
// and cache figures are deltas over the round, not lifetime totals, so
// a trace window reads as a time series directly. Times are virtual
// (simulation) nanoseconds.
type RoundTrace struct {
	// Round is the 1-based round index (Stats.Rounds after the round).
	Round uint64 `json:"round"`
	// Start is the virtual time at which the round began, in ns.
	Start int64 `json:"start_ns"`
	// K is the blocks-per-request quota at round start (the paper's k).
	K int `json:"k"`
	// Active is the number of disk-bound requests admission control
	// carried at round start (the paper's n); CacheServed counts the
	// followers served from the interval cache on top of it.
	Active      int `json:"active"`
	CacheServed int `json:"cache_served"`
	// StreamsServed is how many requests received service this round.
	StreamsServed int `json:"streams_served"`
	// BlocksRead is the number of media blocks delivered this round
	// (disk reads plus cache hits plus regenerated silence).
	BlocksRead uint64 `json:"blocks_read"`
	// DiskBusyNs is the virtual time the disk spent positioning and
	// transferring during the round.
	DiskBusyNs int64 `json:"disk_busy_ns"`
	// CacheHits is the number of blocks served from the interval cache
	// during the round.
	CacheHits uint64 `json:"cache_hits"`
	// Violations is the number of continuity violations recorded
	// during the round; any nonzero value means a deadline was missed.
	Violations uint64 `json:"violations"`
	// Retries is the number of faulted block reads re-attempted during
	// the round, each charged against the round's retry slack.
	Retries uint64 `json:"retries"`
	// Degraded is the number of blocks delivered as zero-fill during
	// the round after faults exhausted the retry budget.
	Degraded uint64 `json:"degraded"`
	// RetrySlackNs is the retry budget left when the round ended:
	// Eq. 18's measured slack minus the retries' service time.
	RetrySlackNs int64 `json:"retry_slack_ns"`
	// RebuildBlocks is the number of repair chunks the online
	// rebuild/rebalance engine copied during the round, charged against
	// the leftover slack above.
	RebuildBlocks uint64 `json:"rebuild_blocks,omitempty"`
}

// DefaultTraceRounds is the default trace ring capacity: enough to
// hold several seconds of rounds at video rates while bounding memory.
const DefaultTraceRounds = 1024

// TraceRing is a fixed-capacity ring buffer of the most recent service
// rounds. Safe for concurrent use: the round loop appends under the
// server's lock while HTTP scrapes snapshot concurrently.
type TraceRing struct {
	mu    sync.Mutex
	buf   []RoundTrace
	next  int // buf index the next Append writes
	total uint64
}

// NewTraceRing creates a ring holding the last n rounds (n < 1 uses
// DefaultTraceRounds).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = DefaultTraceRounds
	}
	return &TraceRing{buf: make([]RoundTrace, 0, n)}
}

// Append records one round, evicting the oldest when full. The ring's
// full capacity is reserved at construction, so appending is a
// reslice, never an allocation — Append sits on the msm recordRound
// hot path.
//
// rt:hotpath
func (t *TraceRing) Append(r RoundTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.buf); n < cap(t.buf) {
		t.buf = t.buf[:n+1]
		t.buf[n] = r
	} else {
		t.buf[t.next] = r
		t.next = (t.next + 1) % cap(t.buf)
	}
	t.total++
}

// Len reports how many rounds are currently held.
func (t *TraceRing) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total reports how many rounds were ever appended.
func (t *TraceRing) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot copies the held rounds oldest-first.
func (t *TraceRing) Snapshot() []RoundTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RoundTrace, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}
