GO ?= go

# Packages whose tests exercise real goroutine concurrency; the race
# subset keeps CI latency down while still covering every mutex.
RACE_PKGS = ./internal/server ./internal/msm ./internal/client ./internal/cache ./internal/obs ./internal/fault ./internal/disk

.PHONY: all build test race race-bench lint lint-fix-check bench bench-baseline bench-compare bench-check fuzz chaos clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# One pass of the striped-array benchmarks under the race detector:
# the per-spindle sub-round goroutines run with 1000 admitted streams
# (and, in the rebuild benchmark, with the online repair engine riding
# the rounds' slack), the heaviest concurrency the code base generates.
race-bench:
	$(GO) test -race -run '^$$' -bench 'BenchmarkStripedRound|BenchmarkRound1000Streams|BenchmarkRebuildRound' -benchtime=1x .

# lint = the standard vet suite plus mmfsvet, the project's own
# invariant checkers (see DESIGN.md "Invariants & static analysis" and
# "Concurrency invariants"). Findings are also archived to mmfsvet.json
# so CI can upload them as an artifact.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/mmfsvet -json mmfsvet.json ./...

# Assert the tree is finding-free, annotating the diff when run under
# GitHub Actions. This is the CI gate: any new finding fails the build.
lint-fix-check:
	$(GO) run ./cmd/mmfsvet -github -json mmfsvet.json ./...

# One pass over every benchmark (the experiment tables plus the
# hot-path micros), archived as JSON for cross-commit diffing.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x . | tee bench.out
	$(GO) run ./cmd/benchjson -out BENCH_$$(date +%F).json < bench.out

# Refresh the committed regression baseline. Wall-clock ns/op is
# stripped: only the deterministic simulated-disk metrics (disk busy
# time, blocks, cache hit ratio) are stable across machines.
bench-baseline:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson -strip-wallclock -out bench/baseline.json

# Gate the working tree against the committed baseline (what CI runs).
bench-compare:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson -out bench/current.json
	$(GO) run ./cmd/benchjson -compare -tolerance 0.15 bench/baseline.json bench/current.json

# Allocation-regression gate: the steady-state service rounds
# (BenchmarkPlaybackRound/steady, BenchmarkQoSClassPass — the round
# loop with the QoS class pass engaged on a degraded population — and
# BenchmarkRebuildRound, the round loop with an online rebuild
# in flight) must hold their baseline allocs/op — zero — and the
# full-playback variant must not grow its allocation count past
# tolerance. Fast enough to run on every push.
bench-check:
	$(GO) test -run '^$$' -bench='BenchmarkPlaybackRound|BenchmarkQoSClassPass|BenchmarkRebuildRound' -benchmem -benchtime=1x . | $(GO) run ./cmd/benchjson -out bench/allocs.json
	$(GO) run ./cmd/benchjson -compare -subset BenchmarkPlaybackRound bench/baseline.json bench/allocs.json
	$(GO) run ./cmd/benchjson -compare -subset BenchmarkQoSClassPass bench/baseline.json bench/allocs.json
	$(GO) run ./cmd/benchjson -compare -subset BenchmarkRebuildRound bench/baseline.json bench/allocs.json

# Short fuzz pass over the wire codec and the fault-scenario parser;
# lengthen -fuzztime locally.
fuzz:
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzEncodeDecodeRoundTrip -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzParseScenario -fuzztime=10s ./internal/fault

# Replay the EXP-FT chaos storms, the EXP-STRIPE degraded-spindle run,
# the EXP-QOS overload cycle, and the EXP-REBUILD spindle-loss/rebuild
# cycle, then check the acceptance assertions (zero aborted plays,
# zero escalation stops, bounded degradation, fault isolation per
# spindle, premium streams undisturbed through load shedding and
# through a whole-spindle loss, admission restored after the online
# rebuild). SEED offsets the storms (see the nightly loop).
SEED ?= 0
chaos:
	$(GO) run ./cmd/mmexperiments -seed $(SEED) -exp ft
	$(GO) run ./cmd/mmexperiments -seed $(SEED) -exp stripe
	$(GO) run ./cmd/mmexperiments -seed $(SEED) -exp qos
	$(GO) run ./cmd/mmexperiments -seed $(SEED) -exp rebuild
	$(GO) test -run 'TestFaultTolerance|TestStripedScaling|TestQoS|TestRebuild' ./internal/experiments
	$(GO) test -run 'TestStriped|TestMirrored' ./internal/msm

clean:
	$(GO) clean ./...
